#include "synopsis/wavelet.h"

#include <algorithm>
#include <cmath>

namespace exploredb {

namespace {

constexpr double kSqrt2 = 1.41421356237309514547;

/// In-place orthonormal Haar decomposition of `v` (power-of-two length).
/// Output layout: index 0 holds the scaling coefficient; detail coefficient
/// j >= 1 at level l = floor(log2 j) has support padded/2^l, covering block
/// (j - 2^l) of that length, positive on its first half.
std::vector<double> HaarForward(std::vector<double> v) {
  size_t n = v.size();
  std::vector<double> coeffs(n, 0.0);
  std::vector<double> scratch(n, 0.0);
  size_t len = n;
  // Repeatedly split into (scaled) pairwise sums and differences.
  while (len > 1) {
    size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = (v[2 * i] + v[2 * i + 1]) / kSqrt2;
      // Detail coefficients of this level land at positions [half, len).
      coeffs[half + i] = (v[2 * i] - v[2 * i + 1]) / kSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + half, v.begin());
    len = half;
  }
  coeffs[0] = v[0];
  return coeffs;
}

}  // namespace

Result<WaveletSynopsis> WaveletSynopsis::Build(const std::vector<double>& data,
                                               size_t k) {
  if (data.empty()) return Status::InvalidArgument("empty data");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  WaveletSynopsis syn;
  syn.n_ = data.size();
  syn.padded_ = 1;
  while (syn.padded_ < syn.n_) syn.padded_ <<= 1;

  std::vector<double> padded(data);
  padded.resize(syn.padded_, 0.0);
  std::vector<double> coeffs = HaarForward(std::move(padded));

  // Keep the k largest-magnitude coefficients (optimal for L2 under an
  // orthonormal basis).
  std::vector<size_t> order(coeffs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  k = std::min(k, order.size());
  std::nth_element(order.begin(), order.begin() + k, order.end(),
                   [&](size_t a, size_t b) {
                     return std::abs(coeffs[a]) > std::abs(coeffs[b]);
                   });
  double dropped_sq = 0.0;
  for (size_t i = k; i < order.size(); ++i) {
    dropped_sq += coeffs[order[i]] * coeffs[order[i]];
  }
  syn.dropped_energy_ = std::sqrt(dropped_sq);
  order.resize(k);
  std::sort(order.begin(), order.end());
  for (size_t idx : order) {
    syn.coeff_index_.push_back(idx);
    syn.coeff_value_.push_back(coeffs[idx]);
  }
  return syn;
}

namespace {

/// The value of the (orthonormal) Haar basis function with coefficient
/// index `j` summed over positions [lo, hi) of a length-`padded` vector.
double BasisRangeSum(size_t j, size_t lo, size_t hi, size_t padded) {
  if (hi <= lo) return 0.0;
  if (j == 0) {
    // Scaling function: constant 1/sqrt(padded).
    return static_cast<double>(hi - lo) / std::sqrt(
               static_cast<double>(padded));
  }
  // Level l = floor(log2 j); 2^l coefficients at this level, each covering
  // padded / 2^l positions.
  size_t level_first = 1;
  while (level_first * 2 <= j) level_first *= 2;
  size_t support = padded / level_first;
  size_t start = (j - level_first) * support;
  size_t mid = start + support / 2;
  size_t end = start + support;
  auto overlap = [&](size_t a, size_t b) -> double {
    size_t s = std::max(lo, a);
    size_t e = std::min(hi, b);
    return e > s ? static_cast<double>(e - s) : 0.0;
  };
  double amplitude = 1.0 / std::sqrt(static_cast<double>(support));
  return amplitude * (overlap(start, mid) - overlap(mid, end));
}

}  // namespace

double WaveletSynopsis::EstimatePoint(size_t i) const {
  return EstimateRangeSum(i, i + 1);
}

double WaveletSynopsis::EstimateRangeSum(size_t lo, size_t hi) const {
  hi = std::min(hi, n_);
  if (hi <= lo) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < coeff_index_.size(); ++c) {
    sum += coeff_value_[c] * BasisRangeSum(coeff_index_[c], lo, hi, padded_);
  }
  return sum;
}

std::vector<double> WaveletSynopsis::Reconstruct() const {
  // Dense inverse transform from the sparse coefficients.
  std::vector<double> coeffs(padded_, 0.0);
  for (size_t c = 0; c < coeff_index_.size(); ++c) {
    coeffs[coeff_index_[c]] = coeff_value_[c];
  }
  std::vector<double> values(padded_, 0.0);
  values[0] = coeffs[0];
  std::vector<double> scratch(padded_, 0.0);
  for (size_t half = 1; half < padded_; half *= 2) {
    for (size_t i = 0; i < half; ++i) {
      double s = values[i];
      double d = coeffs[half + i];
      scratch[2 * i] = (s + d) / kSqrt2;
      scratch[2 * i + 1] = (s - d) / kSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + 2 * half, values.begin());
  }
  values.resize(n_);
  return values;
}

}  // namespace exploredb
