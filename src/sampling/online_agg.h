#ifndef EXPLOREDB_SAMPLING_ONLINE_AGG_H_
#define EXPLOREDB_SAMPLING_ONLINE_AGG_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "sampling/estimators.h"
#include "storage/predicate.h"

namespace exploredb {

/// Aggregates computable online.
enum class AggKind { kAvg, kSum, kCount };

const char* AggKindName(AggKind kind);

/// Online aggregation [Hellerstein/Haas/Wang, SIGMOD'97; CONTROL project]:
/// processes the data in random order, maintaining a running estimate whose
/// confidence interval shrinks as ~1/sqrt(tuples processed). The user can
/// stop at any time — the core interaction pattern of exploratory AQP.
class OnlineAggregator {
 public:
  /// `values` is the aggregated column; `mask` (optional, same length) marks
  /// which rows satisfy the query predicate (COUNT counts mask hits; AVG/SUM
  /// aggregate masked-in values only). A byte per row rather than
  /// vector<bool> so partitioned producers can fill disjoint ranges
  /// concurrently. Rows are visited in a random permutation drawn from
  /// `seed`.
  OnlineAggregator(std::vector<double> values, std::vector<uint8_t> mask,
                   AggKind kind, uint64_t seed = 42);

  /// Processes up to `batch` more rows; returns rows actually consumed
  /// (0 when exhausted).
  size_t ProcessNext(size_t batch);

  /// Current running estimate; exact (zero CI width) once all rows are seen.
  Estimate Current(double confidence = 0.95) const;

  bool done() const { return cursor_ >= order_.size(); }
  size_t rows_processed() const { return cursor_; }
  size_t population_size() const { return order_.size(); }

 private:
  std::vector<double> values_;
  std::vector<uint8_t> mask_;
  AggKind kind_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;

  // Welford accumulators over the per-row contribution stream.
  double mean_ = 0.0;
  double m2_ = 0.0;
  size_t matches_ = 0;
};

/// Materialized inputs for an OnlineAggregator: the measure column widened
/// to double plus the predicate mask.
struct OnlineInput {
  std::vector<double> values;
  std::vector<uint8_t> mask;
};

/// Builds OnlineAggregator inputs with one worker per partition: the row
/// range is split into `partition_rows`-sized slices and each worker fills
/// its disjoint slice of both output vectors in place. `measure` may be null
/// (COUNT); `pool` may be null for serial execution. `partitions_dispatched`
/// and `threads_used` (both optional) receive dispatch statistics.
OnlineInput BuildOnlineInput(const std::vector<Condition>& conditions,
                             const std::vector<const ColumnVector*>& cols,
                             const ColumnVector* measure, size_t num_rows,
                             ThreadPool* pool, size_t partition_rows,
                             uint64_t* partitions_dispatched = nullptr,
                             uint32_t* threads_used = nullptr);

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_ONLINE_AGG_H_
