#ifndef EXPLOREDB_SAMPLING_OUTLIER_INDEX_H_
#define EXPLOREDB_SAMPLING_OUTLIER_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sampling/estimators.h"

namespace exploredb {

/// Outlier-indexed sampling ["Overcoming Limitations of Sampling for
/// Aggregation Queries", Chaudhuri/Das/Datar/Motwani/Narasayya, ICDE'01 —
/// the approximate-processing lineage the tutorial's §2.2/§2.3 builds on].
///
/// Uniform samples estimate SUM/AVG poorly on heavy-tailed data because a
/// few extreme tuples carry most of the mass and are usually missed. The
/// fix: split the data into a small *outlier set* (largest |values|),
/// aggregated exactly, and the well-behaved remainder, estimated from a
/// uniform sample. Total estimate = exact outlier sum + scaled sample
/// estimate; the CI covers only the sampled part.
class OutlierIndexedSample {
 public:
  /// `outlier_budget` values are kept exactly, `sample_budget` rows are
  /// sampled uniformly from the remainder. Requires non-empty values and
  /// positive budgets.
  static Result<OutlierIndexedSample> Build(const std::vector<double>& values,
                                            size_t outlier_budget,
                                            size_t sample_budget,
                                            uint64_t seed = 42);

  /// Estimated SUM over the full population with a CLT CI (outlier part is
  /// exact and contributes no width).
  Estimate EstimateSum(double confidence = 0.95) const;

  /// Estimated AVG over the full population.
  Estimate EstimateAvg(double confidence = 0.95) const;

  /// Plain uniform-sampling estimate at the same *total* storage budget
  /// (outlier_budget + sample_budget rows), for comparison.
  static Estimate UniformSumEstimate(const std::vector<double>& values,
                                     size_t budget, uint64_t seed = 42,
                                     double confidence = 0.95);

  size_t outliers_kept() const { return outlier_sum_count_; }
  size_t sample_size() const { return sample_.size(); }

 private:
  OutlierIndexedSample() = default;

  double outlier_sum_ = 0.0;
  size_t outlier_sum_count_ = 0;
  std::vector<double> sample_;      // sampled non-outlier values
  size_t remainder_size_ = 0;       // population size of the non-outliers
  size_t population_size_ = 0;
};

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_OUTLIER_INDEX_H_
