#include "sampling/estimators.h"

#include <cmath>

namespace exploredb {

double NormalQuantile(double p) {
  // Peter Acklam's inverse-normal approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p <= 0.0) return -INFINITY;
  if (p >= 1.0) return INFINITY;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double ZScore(double confidence) {
  return NormalQuantile(0.5 + confidence / 2.0);
}

namespace {

void MeanVariance(const std::vector<double>& sample, double* mean,
                  double* variance) {
  // Welford's online algorithm for numerical stability.
  double m = 0.0, m2 = 0.0;
  size_t n = 0;
  for (double x : sample) {
    ++n;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
  }
  *mean = m;
  *variance = (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
}

}  // namespace

Estimate EstimateMean(const std::vector<double>& sample, double confidence) {
  Estimate e;
  e.confidence = confidence;
  e.sample_size = sample.size();
  if (sample.empty()) return e;
  double mean, var;
  MeanVariance(sample, &mean, &var);
  e.value = mean;
  e.ci_half_width =
      ZScore(confidence) * std::sqrt(var / static_cast<double>(sample.size()));
  return e;
}

Estimate EstimateSum(const std::vector<double>& sample,
                     size_t population_size, double confidence) {
  Estimate e = EstimateMean(sample, confidence);
  const double N = static_cast<double>(population_size);
  const double n = static_cast<double>(sample.size());
  // Finite-population correction for sampling without replacement.
  double fpc =
      (population_size > 1 && n < N) ? std::sqrt((N - n) / (N - 1)) : 0.0;
  e.value *= N;
  e.ci_half_width *= N * fpc;
  return e;
}

Estimate EstimateCount(size_t matches, size_t sample_size,
                       size_t population_size, double confidence) {
  Estimate e;
  e.confidence = confidence;
  e.sample_size = sample_size;
  if (sample_size == 0) return e;
  const double n = static_cast<double>(sample_size);
  const double N = static_cast<double>(population_size);
  const double p = static_cast<double>(matches) / n;
  e.value = p * N;
  double se = std::sqrt(p * (1 - p) / n);
  double fpc =
      (population_size > 1 && n < N) ? std::sqrt((N - n) / (N - 1)) : 0.0;
  e.ci_half_width = ZScore(confidence) * se * N * fpc;
  return e;
}

double HoeffdingHalfWidth(size_t sample_size, double value_lo,
                          double value_hi, double confidence) {
  if (sample_size == 0) return INFINITY;
  const double range = value_hi - value_lo;
  const double delta = 1.0 - confidence;
  return range * std::sqrt(std::log(2.0 / delta) /
                           (2.0 * static_cast<double>(sample_size)));
}

}  // namespace exploredb
