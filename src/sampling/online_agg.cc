#include "sampling/online_agg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"

namespace exploredb {

namespace {

// Online-aggregation refinement progress, across every aggregator in the
// process: rounds (ProcessNext calls that consumed rows) and rows folded
// into the running estimate.
Counter* RoundsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_onlineagg_rounds_total",
      "Online-aggregation refinement rounds");
  return c;
}

Counter* RowsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_onlineagg_rows_total",
      "Rows folded into online-aggregation estimates");
  return c;
}

}  // namespace

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
  }
  return "?";
}

OnlineAggregator::OnlineAggregator(std::vector<double> values,
                                   std::vector<uint8_t> mask, AggKind kind,
                                   uint64_t seed)
    : values_(std::move(values)), mask_(std::move(mask)), kind_(kind) {
  if (mask_.empty()) mask_.assign(values_.size(), true);
  order_.resize(values_.size());
  std::iota(order_.begin(), order_.end(), 0);
  Random rng(seed);
  rng.Shuffle(&order_);
}

size_t OnlineAggregator::ProcessNext(size_t batch) {
  size_t consumed = 0;
  while (consumed < batch && cursor_ < order_.size()) {
    uint32_t row = order_[cursor_++];
    ++consumed;
    bool hit = mask_[row] != 0;
    matches_ += hit;
    double x;
    size_t n;
    switch (kind_) {
      case AggKind::kAvg:
        // Welford over matched values only.
        if (!hit) continue;
        x = values_[row];
        n = matches_;
        break;
      case AggKind::kSum:
        x = hit ? values_[row] : 0.0;
        n = cursor_;
        break;
      case AggKind::kCount:
        x = hit ? 1.0 : 0.0;
        n = cursor_;
        break;
      default:
        continue;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n);
    m2_ += delta * (x - mean_);
  }
  if (consumed > 0) {
    RoundsCounter()->Add();
    RowsCounter()->Add(consumed);
  }
  return consumed;
}

Estimate OnlineAggregator::Current(double confidence) const {
  Estimate e;
  e.confidence = confidence;
  e.sample_size = cursor_;
  const double N = static_cast<double>(order_.size());
  const double processed = static_cast<double>(cursor_);
  // Finite-population correction: the interval collapses as we approach a
  // complete scan, which is the defining UX of online aggregation.
  double fpc = (N > 1 && processed < N)
                   ? std::sqrt((N - processed) / (N - 1))
                   : 0.0;
  const double z = ZScore(confidence);
  switch (kind_) {
    case AggKind::kAvg: {
      e.value = mean_;
      if (matches_ > 1) {
        double sd = std::sqrt(m2_ / static_cast<double>(matches_ - 1));
        e.ci_half_width =
            z * sd / std::sqrt(static_cast<double>(matches_)) * fpc;
      } else {
        e.ci_half_width = INFINITY;
      }
      break;
    }
    case AggKind::kSum:
    case AggKind::kCount: {
      e.value = mean_ * N;
      if (cursor_ > 1) {
        double sd = std::sqrt(m2_ / (processed - 1));
        e.ci_half_width = z * sd / std::sqrt(processed) * N * fpc;
      } else {
        e.ci_half_width = INFINITY;
      }
      break;
    }
  }
  return e;
}

OnlineInput BuildOnlineInput(const std::vector<Condition>& conditions,
                             const std::vector<const ColumnVector*>& cols,
                             const ColumnVector* measure, size_t num_rows,
                             ThreadPool* pool, size_t partition_rows,
                             uint64_t* partitions_dispatched,
                             uint32_t* threads_used) {
  OnlineInput input;
  input.values.assign(num_rows, 0.0);
  input.mask.assign(num_rows, 0);
  if (num_rows == 0) return input;
  if (partition_rows == 0) partition_rows = num_rows;

  auto fill = [&](size_t begin, size_t end) {
    // Workers touch disjoint [begin, end) slices: plain writes, no sync.
    const simd::KernelTable& kt = simd::ActiveKernels();
    const auto b = static_cast<uint32_t>(begin);
    const auto e = static_cast<uint32_t>(end);
    if (conditions.empty()) {
      std::fill(input.mask.begin() + static_cast<ptrdiff_t>(begin),
                input.mask.begin() + static_cast<ptrdiff_t>(end), uint8_t{1});
    } else if (conditions.size() == 1 &&
               cols[0]->type() == DataType::kInt64 &&
               conditions[0].constant.is_int64()) {
      kt.mask_i64_cmp(cols[0]->int64_data().data(), b, e,
                      ToSimdCmp(conditions[0].op),
                      conditions[0].constant.int64(), input.mask.data());
    } else if (conditions.size() == 1 &&
               cols[0]->type() == DataType::kDouble &&
               !conditions[0].constant.is_string()) {
      kt.mask_f64_cmp(cols[0]->double_data().data(), b, e,
                      ToSimdCmp(conditions[0].op),
                      conditions[0].constant.AsDouble(), input.mask.data());
    } else {
      std::vector<uint32_t> hits;
      Predicate::FilterRange(conditions, cols, b, e, &hits);
      for (uint32_t row : hits) input.mask[row] = 1;
    }
    if (measure != nullptr) {
      if (measure->type() == DataType::kDouble) {
        const double* src = measure->double_data().data();
        std::copy(src + begin, src + end, input.values.data() + begin);
      } else if (measure->type() == DataType::kInt64) {
        kt.widen_i64_f64(measure->int64_data().data() + begin, end - begin,
                         input.values.data() + begin);
      } else {
        for (size_t row = begin; row < end; ++row) {
          input.values[row] = measure->GetDouble(row);
        }
      }
    }
  };

  const size_t partitions = (num_rows + partition_rows - 1) / partition_rows;
  if (pool == nullptr || partitions < 2) {
    fill(0, num_rows);
    if (partitions_dispatched != nullptr) *partitions_dispatched += 1;
    return input;
  }
  ThreadPool::ForStats stats = pool->ParallelFor(partitions, [&](size_t p) {
    size_t begin = p * partition_rows;
    fill(begin, std::min(num_rows, begin + partition_rows));
  });
  if (partitions_dispatched != nullptr) *partitions_dispatched += stats.chunks;
  if (threads_used != nullptr) {
    *threads_used = std::max(*threads_used, stats.threads_used);
  }
  return input;
}

}  // namespace exploredb
