#ifndef EXPLOREDB_SAMPLING_ESTIMATORS_H_
#define EXPLOREDB_SAMPLING_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace exploredb {

/// A point estimate with a symmetric confidence interval — the contract AQP
/// systems expose to the user ("answer ± error at confidence c").
struct Estimate {
  double value = 0.0;
  double ci_half_width = 0.0;  ///< half-width at the requested confidence
  double confidence = 0.95;
  size_t sample_size = 0;

  double lo() const { return value - ci_half_width; }
  double hi() const { return value + ci_half_width; }
};

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε|<1.2e-9).
double NormalQuantile(double p);

/// z-score for a two-sided confidence level (e.g. 0.95 -> ~1.96).
double ZScore(double confidence);

/// CLT-based mean estimate from a uniform sample of the population.
Estimate EstimateMean(const std::vector<double>& sample, double confidence);

/// Sum over a population of size `population_size`, scaled from the sample
/// mean (uniform sampling), with finite-population correction.
Estimate EstimateSum(const std::vector<double>& sample,
                     size_t population_size, double confidence);

/// Count of predicate matches in a population of `population_size`, given
/// `matches` hits in a uniform sample of `sample_size` (binomial CI).
Estimate EstimateCount(size_t matches, size_t sample_size,
                       size_t population_size, double confidence);

/// Distribution-free alternative for bounded values in [lo, hi]: Hoeffding
/// half-width for the mean at the given confidence. Wider but assumption-free
/// — the bound the online-aggregation literature quotes for early results.
double HoeffdingHalfWidth(size_t sample_size, double value_lo,
                          double value_hi, double confidence);

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_ESTIMATORS_H_
