#include "sampling/outlier_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "sampling/sampler.h"

namespace exploredb {

Result<OutlierIndexedSample> OutlierIndexedSample::Build(
    const std::vector<double>& values, size_t outlier_budget,
    size_t sample_budget, uint64_t seed) {
  if (values.empty()) return Status::InvalidArgument("empty values");
  if (outlier_budget == 0 || sample_budget == 0) {
    return Status::InvalidArgument("budgets must be positive");
  }
  OutlierIndexedSample out;
  out.population_size_ = values.size();
  outlier_budget = std::min(outlier_budget, values.size());

  // Outliers = largest |value| rows (deviation from the mean would be the
  // textbook criterion; |value| matches SUM-error minimization for
  // zero-centered noise-plus-spikes data and is one pass cheaper).
  std::vector<uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + outlier_budget, order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return std::abs(values[a]) > std::abs(values[b]);
                   });
  std::vector<bool> is_outlier(values.size(), false);
  for (size_t i = 0; i < outlier_budget; ++i) {
    is_outlier[order[i]] = true;
    out.outlier_sum_ += values[order[i]];
  }
  out.outlier_sum_count_ = outlier_budget;

  // Uniform sample of the remainder.
  std::vector<double> remainder;
  remainder.reserve(values.size() - outlier_budget);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!is_outlier[i]) remainder.push_back(values[i]);
  }
  out.remainder_size_ = remainder.size();
  Random rng(seed);
  std::vector<uint32_t> picked =
      SamplePositions(remainder.size(), sample_budget, &rng);
  out.sample_.reserve(picked.size());
  for (uint32_t i : picked) out.sample_.push_back(remainder[i]);
  return out;
}

Estimate OutlierIndexedSample::EstimateSum(double confidence) const {
  Estimate rest = exploredb::EstimateSum(sample_, remainder_size_, confidence);
  rest.value += outlier_sum_;  // exact part; CI width unchanged
  rest.sample_size += outlier_sum_count_;
  return rest;
}

Estimate OutlierIndexedSample::EstimateAvg(double confidence) const {
  Estimate sum = EstimateSum(confidence);
  Estimate avg = sum;
  double n = static_cast<double>(population_size_);
  avg.value = sum.value / n;
  avg.ci_half_width = sum.ci_half_width / n;
  return avg;
}

Estimate OutlierIndexedSample::UniformSumEstimate(
    const std::vector<double>& values, size_t budget, uint64_t seed,
    double confidence) {
  Random rng(seed);
  std::vector<uint32_t> picked = SamplePositions(values.size(), budget, &rng);
  std::vector<double> sample;
  sample.reserve(picked.size());
  for (uint32_t i : picked) sample.push_back(values[i]);
  return exploredb::EstimateSum(sample, values.size(), confidence);
}

}  // namespace exploredb
