#ifndef EXPLOREDB_SAMPLING_SAMPLER_H_
#define EXPLOREDB_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace exploredb {

/// Streaming uniform sampler (Vitter's Algorithm R): maintains a uniform
/// k-subset of everything Add()ed so far without knowing the stream length.
/// Used for building AQP samples in one pass and by the online aggregator.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed = 42)
      : capacity_(capacity), rng_(seed) {}

  /// Offers stream element `row` to the reservoir.
  void Add(uint32_t row);

  /// The current uniform sample (size = min(capacity, items seen)).
  const std::vector<uint32_t>& sample() const { return reservoir_; }
  size_t items_seen() const { return items_seen_; }

 private:
  size_t capacity_;
  Random rng_;
  std::vector<uint32_t> reservoir_;
  size_t items_seen_ = 0;
};

/// Uniform sample of `k` distinct positions from [0, n) (Floyd's algorithm
/// when k << n, partial shuffle otherwise). Sorted ascending.
std::vector<uint32_t> SamplePositions(size_t n, size_t k, Random* rng);

/// Bernoulli sample: includes each position independently with probability
/// `fraction`. Sorted ascending.
std::vector<uint32_t> BernoulliSample(size_t n, double fraction, Random* rng);

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_SAMPLER_H_
