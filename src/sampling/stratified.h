#ifndef EXPLOREDB_SAMPLING_STRATIFIED_H_
#define EXPLOREDB_SAMPLING_STRATIFIED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sampling/estimators.h"

namespace exploredb {

/// BlinkDB-style stratified sample over a categorical column [Agarwal et al.,
/// EuroSys'13]: every group keeps at most `cap` rows, so rare groups — which
/// a uniform sample misses entirely — are fully represented, at the cost of
/// weighting frequent groups during estimation.
class StratifiedSample {
 public:
  /// Builds the sample over `group_keys` (one key per row), capping each
  /// group at `cap` sampled rows chosen uniformly within the group.
  StratifiedSample(const std::vector<std::string>& group_keys, size_t cap,
                   uint64_t seed = 42);

  /// Sampled row positions, ascending.
  const std::vector<uint32_t>& positions() const { return positions_; }

  /// Inverse inclusion probability of the sampled row at positions()[i]
  /// (group_size / group_sample_size); the Horvitz-Thompson weight.
  double weight(size_t i) const { return weights_[i]; }

  size_t num_groups() const { return group_sizes_.size(); }
  size_t size() const { return positions_.size(); }

  /// Per-group mean of `values` (indexed by row position) with CLT CIs.
  /// Exact for groups at or below the cap.
  std::unordered_map<std::string, Estimate> GroupMeans(
      const std::vector<double>& values,
      const std::vector<std::string>& group_keys,
      double confidence = 0.95) const;

  /// Weighted (Horvitz-Thompson) total of `values` over the population.
  double WeightedSum(const std::vector<double>& values) const;

  /// Well-formedness against the column the sample was built over: positions
  /// are strictly ascending and in range, every group holds exactly
  /// min(cap, group_size) sampled rows, the recorded group sizes match the
  /// data, and each weight is the group's exact inverse inclusion
  /// probability. A violated invariant silently biases every estimate this
  /// sample serves. O(rows).
  Status Validate(const std::vector<std::string>& group_keys,
                  size_t cap) const;

 private:
  std::vector<uint32_t> positions_;
  std::vector<double> weights_;
  std::unordered_map<std::string, size_t> group_sizes_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_STRATIFIED_H_
