#include "sampling/stratified.h"

#include <algorithm>

namespace exploredb {

StratifiedSample::StratifiedSample(
    const std::vector<std::string>& group_keys, size_t cap, uint64_t seed) {
  Random rng(seed);
  std::unordered_map<std::string, std::vector<uint32_t>> rows_by_group;
  for (size_t i = 0; i < group_keys.size(); ++i) {
    rows_by_group[group_keys[i]].push_back(static_cast<uint32_t>(i));
  }
  for (auto& [key, rows] : rows_by_group) {
    group_sizes_[key] = rows.size();
    size_t take = std::min(cap, rows.size());
    // Partial Fisher-Yates inside the group.
    for (size_t i = 0; i < take; ++i) {
      size_t j = i + rng.Uniform(rows.size() - i);
      std::swap(rows[i], rows[j]);
    }
    double w = static_cast<double>(rows.size()) / static_cast<double>(take);
    for (size_t i = 0; i < take; ++i) {
      positions_.push_back(rows[i]);
      weights_.push_back(w);
    }
  }
  // Keep (position, weight) pairs aligned while sorting by position.
  std::vector<size_t> order(positions_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return positions_[a] < positions_[b];
  });
  std::vector<uint32_t> pos2(positions_.size());
  std::vector<double> w2(weights_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pos2[i] = positions_[order[i]];
    w2[i] = weights_[order[i]];
  }
  positions_ = std::move(pos2);
  weights_ = std::move(w2);
}

std::unordered_map<std::string, Estimate> StratifiedSample::GroupMeans(
    const std::vector<double>& values,
    const std::vector<std::string>& group_keys, double confidence) const {
  std::unordered_map<std::string, std::vector<double>> sampled_by_group;
  for (uint32_t pos : positions_) {
    sampled_by_group[group_keys[pos]].push_back(values[pos]);
  }
  std::unordered_map<std::string, Estimate> out;
  for (const auto& [key, sample] : sampled_by_group) {
    Estimate e = EstimateMean(sample, confidence);
    // Groups at or below the cap are fully sampled: the mean is exact.
    auto it = group_sizes_.find(key);
    if (it != group_sizes_.end() && sample.size() >= it->second) {
      e.ci_half_width = 0.0;
    }
    out[key] = e;
  }
  return out;
}

double StratifiedSample::WeightedSum(const std::vector<double>& values) const {
  double total = 0.0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    total += values[positions_[i]] * weights_[i];
  }
  return total;
}

}  // namespace exploredb
