#include "sampling/stratified.h"

#include <algorithm>

namespace exploredb {

StratifiedSample::StratifiedSample(
    const std::vector<std::string>& group_keys, size_t cap, uint64_t seed) {
  Random rng(seed);
  std::unordered_map<std::string, std::vector<uint32_t>> rows_by_group;
  for (size_t i = 0; i < group_keys.size(); ++i) {
    rows_by_group[group_keys[i]].push_back(static_cast<uint32_t>(i));
  }
  for (auto& [key, rows] : rows_by_group) {
    group_sizes_[key] = rows.size();
    size_t take = std::min(cap, rows.size());
    // Partial Fisher-Yates inside the group.
    for (size_t i = 0; i < take; ++i) {
      size_t j = i + rng.Uniform(rows.size() - i);
      std::swap(rows[i], rows[j]);
    }
    double w = static_cast<double>(rows.size()) / static_cast<double>(take);
    for (size_t i = 0; i < take; ++i) {
      positions_.push_back(rows[i]);
      weights_.push_back(w);
    }
  }
  // Keep (position, weight) pairs aligned while sorting by position.
  std::vector<size_t> order(positions_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return positions_[a] < positions_[b];
  });
  std::vector<uint32_t> pos2(positions_.size());
  std::vector<double> w2(weights_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pos2[i] = positions_[order[i]];
    w2[i] = weights_[order[i]];
  }
  positions_ = std::move(pos2);
  weights_ = std::move(w2);
}

std::unordered_map<std::string, Estimate> StratifiedSample::GroupMeans(
    const std::vector<double>& values,
    const std::vector<std::string>& group_keys, double confidence) const {
  std::unordered_map<std::string, std::vector<double>> sampled_by_group;
  for (uint32_t pos : positions_) {
    sampled_by_group[group_keys[pos]].push_back(values[pos]);
  }
  std::unordered_map<std::string, Estimate> out;
  for (const auto& [key, sample] : sampled_by_group) {
    Estimate e = EstimateMean(sample, confidence);
    // Groups at or below the cap are fully sampled: the mean is exact.
    auto it = group_sizes_.find(key);
    if (it != group_sizes_.end() && sample.size() >= it->second) {
      e.ci_half_width = 0.0;
    }
    out[key] = e;
  }
  return out;
}

Status StratifiedSample::Validate(const std::vector<std::string>& group_keys,
                                  size_t cap) const {
  if (weights_.size() != positions_.size()) {
    return Status::Internal("stratified sample: " +
                            std::to_string(positions_.size()) +
                            " positions but " +
                            std::to_string(weights_.size()) + " weights");
  }
  // True per-group row counts of the underlying column.
  std::unordered_map<std::string, size_t> true_sizes;
  for (const std::string& key : group_keys) ++true_sizes[key];
  if (true_sizes.size() != group_sizes_.size()) {
    return Status::Internal("stratified sample: saw " +
                            std::to_string(group_sizes_.size()) +
                            " groups, column has " +
                            std::to_string(true_sizes.size()));
  }
  for (const auto& [key, size] : group_sizes_) {
    auto it = true_sizes.find(key);
    if (it == true_sizes.end() || it->second != size) {
      return Status::Internal("stratified sample: recorded size of group '" +
                              key + "' disagrees with the column");
    }
  }
  std::unordered_map<std::string, size_t> sampled_counts;
  for (size_t i = 0; i < positions_.size(); ++i) {
    if (i > 0 && positions_[i] <= positions_[i - 1]) {
      return Status::Internal(
          "stratified sample: positions not strictly ascending at index " +
          std::to_string(i));
    }
    if (positions_[i] >= group_keys.size()) {
      return Status::Internal("stratified sample: position " +
                              std::to_string(positions_[i]) +
                              " out of range");
    }
    const std::string& key = group_keys[positions_[i]];
    ++sampled_counts[key];
    // Exact Horvitz-Thompson weight: group_size / sample_size.
    size_t group_size = true_sizes[key];
    double want = static_cast<double>(group_size) /
                  static_cast<double>(std::min(cap, group_size));
    if (weights_[i] != want) {
      return Status::Internal("stratified sample: row " +
                              std::to_string(positions_[i]) + " in group '" +
                              key + "' has weight " +
                              std::to_string(weights_[i]) + ", expected " +
                              std::to_string(want));
    }
  }
  for (const auto& [key, size] : true_sizes) {
    size_t want = std::min(cap, size);
    auto it = sampled_counts.find(key);
    size_t got = it == sampled_counts.end() ? 0 : it->second;
    if (got != want) {
      return Status::Internal("stratified sample: group '" + key + "' holds " +
                              std::to_string(got) + " sampled rows, cap " +
                              "implies " + std::to_string(want));
    }
  }
  return Status::OK();
}

double StratifiedSample::WeightedSum(const std::vector<double>& values) const {
  double total = 0.0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    total += values[positions_[i]] * weights_[i];
  }
  return total;
}

}  // namespace exploredb
