#include "sampling/sampler.h"

#include <algorithm>
#include <unordered_set>

namespace exploredb {

void ReservoirSampler::Add(uint32_t row) {
  ++items_seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(row);
    return;
  }
  size_t j = rng_.Uniform(items_seen_);
  if (j < capacity_) reservoir_[j] = row;
}

std::vector<uint32_t> SamplePositions(size_t n, size_t k, Random* rng) {
  k = std::min(k, n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k * 4 < n) {
    // Floyd's algorithm: k iterations, expected O(k) set operations.
    std::unordered_set<uint32_t> chosen;
    chosen.reserve(k * 2);
    for (size_t j = n - k; j < n; ++j) {
      uint32_t t = static_cast<uint32_t>(rng->Uniform(j + 1));
      if (!chosen.insert(t).second) {
        chosen.insert(static_cast<uint32_t>(j));
      }
    }
    out.assign(chosen.begin(), chosen.end());
  } else {
    std::vector<uint32_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
    // Partial Fisher-Yates: first k slots become the sample.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + rng->Uniform(n - i);
      std::swap(all[i], all[j]);
    }
    out.assign(all.begin(), all.begin() + k);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> BernoulliSample(size_t n, double fraction, Random* rng) {
  std::vector<uint32_t> out;
  if (fraction <= 0.0) return out;
  if (fraction >= 1.0) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  out.reserve(static_cast<size_t>(n * fraction * 1.2) + 16);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextDouble() < fraction) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

}  // namespace exploredb
