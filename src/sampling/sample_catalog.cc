#include "sampling/sample_catalog.h"

#include <algorithm>

#include "sampling/sampler.h"

namespace exploredb {

SampleCatalog::SampleCatalog(const Table* table,
                             std::vector<double> fractions, uint64_t seed)
    : table_(table) {
  std::sort(fractions.begin(), fractions.end());
  Random rng(seed);
  const size_t n = table_->num_rows();
  for (double f : fractions) {
    CatalogSample s;
    s.fraction = f;
    s.positions = SamplePositions(n, static_cast<size_t>(f * n + 0.5), &rng);
    samples_.push_back(std::move(s));
  }
}

Result<Estimate> SampleCatalog::AvgOnPositions(
    const std::string& value_column, const Predicate& pred,
    const std::vector<uint32_t>& positions, double confidence) const {
  EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                             table_->ColumnByName(value_column));
  if (col->type() == DataType::kString) {
    return Status::InvalidArgument("AVG over string column");
  }
  std::vector<double> matched;
  for (uint32_t pos : positions) {
    if (pred.Matches(*table_, pos)) matched.push_back(col->GetDouble(pos));
  }
  return EstimateMean(matched, confidence);
}

Result<ApproxAnswer> SampleCatalog::AvgWithErrorBudget(
    const std::string& value_column, const Predicate& pred,
    double error_budget, double confidence) const {
  for (const CatalogSample& s : samples_) {
    EXPLOREDB_ASSIGN_OR_RETURN(
        Estimate e,
        AvgOnPositions(value_column, pred, s.positions, confidence));
    if (e.sample_size > 1 && e.ci_half_width <= error_budget) {
      return ApproxAnswer{e, s.fraction};
    }
  }
  // Escalate to the exact answer on the full table.
  std::vector<uint32_t> all(table_->num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  EXPLOREDB_ASSIGN_OR_RETURN(
      Estimate e, AvgOnPositions(value_column, pred, all, confidence));
  e.ci_half_width = 0.0;  // exact
  return ApproxAnswer{e, 1.0};
}

Result<ApproxAnswer> SampleCatalog::AvgWithRowBudget(
    const std::string& value_column, const Predicate& pred, size_t max_rows,
    double confidence) const {
  const CatalogSample* best = nullptr;
  for (const CatalogSample& s : samples_) {
    if (s.positions.size() <= max_rows) best = &s;
  }
  if (best == nullptr) {
    return Status::InvalidArgument(
        "row budget below the smallest catalog sample");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(
      Estimate e,
      AvgOnPositions(value_column, pred, best->positions, confidence));
  return ApproxAnswer{e, best->fraction};
}

}  // namespace exploredb
