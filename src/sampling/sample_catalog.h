#ifndef EXPLOREDB_SAMPLING_SAMPLE_CATALOG_H_
#define EXPLOREDB_SAMPLING_SAMPLE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "sampling/estimators.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace exploredb {

/// One pre-materialized uniform sample of the base table.
struct CatalogSample {
  double fraction;                  ///< sampling rate
  std::vector<uint32_t> positions;  ///< sampled rows, ascending
};

/// Answer of a catalog-served approximate query.
struct ApproxAnswer {
  Estimate estimate;
  double fraction_used = 1.0;  ///< 1.0 means it fell back to the full data
};

/// Pre-computed multi-resolution samples plus a BlinkDB-flavored selector:
/// given an error or a latency budget, run the query on the smallest sample
/// predicted to satisfy it, escalating to larger samples when the realized
/// CI misses an error budget [Agarwal et al., EuroSys'13].
class SampleCatalog {
 public:
  /// Builds uniform samples of the table at each fraction in `fractions`
  /// (e.g. {0.001, 0.01, 0.1}).
  SampleCatalog(const Table* table, std::vector<double> fractions,
                uint64_t seed = 42);

  /// AVG(`value_column`) over rows matching `pred`, using the smallest
  /// sample whose realized CI half-width <= `error_budget` (absolute).
  /// Escalates through samples and finally the full table if necessary.
  Result<ApproxAnswer> AvgWithErrorBudget(const std::string& value_column,
                                          const Predicate& pred,
                                          double error_budget,
                                          double confidence = 0.95) const;

  /// AVG with a row budget: uses the largest sample that still touches at
  /// most `max_rows` rows — a latency bound in the simulator's cost model
  /// (rows touched is the latency proxy).
  Result<ApproxAnswer> AvgWithRowBudget(const std::string& value_column,
                                        const Predicate& pred,
                                        size_t max_rows,
                                        double confidence = 0.95) const;

  const std::vector<CatalogSample>& samples() const { return samples_; }

 private:
  /// Evaluates AVG on the rows of `positions` that match `pred`.
  Result<Estimate> AvgOnPositions(const std::string& value_column,
                                  const Predicate& pred,
                                  const std::vector<uint32_t>& positions,
                                  double confidence) const;

  const Table* table_;
  std::vector<CatalogSample> samples_;  // ascending by fraction
};

}  // namespace exploredb

#endif  // EXPLOREDB_SAMPLING_SAMPLE_CATALOG_H_
