#include "storage/predicate.h"

#include <sstream>

namespace exploredb {

simd::Cmp ToSimdCmp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return simd::Cmp::kLt;
    case CompareOp::kLe:
      return simd::Cmp::kLe;
    case CompareOp::kGt:
      return simd::Cmp::kGt;
    case CompareOp::kGe:
      return simd::Cmp::kGe;
    case CompareOp::kEq:
      return simd::Cmp::kEq;
    case CompareOp::kNe:
      return simd::Cmp::kNe;
  }
  return simd::Cmp::kEq;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

namespace {

template <typename T>
bool Compare(const T& lhs, CompareOp op, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace

bool Condition::Matches(const Table& table, size_t row) const {
  return MatchesColumn(table.column(column), row);
}

bool Condition::MatchesColumn(const ColumnVector& col, size_t row) const {
  switch (col.type()) {
    case DataType::kInt64:
      // Allow numeric constants of either flavor against int columns.
      if (constant.is_int64()) {
        return Compare(col.int64_data()[row], op, constant.int64());
      }
      return Compare(static_cast<double>(col.int64_data()[row]), op,
                     constant.AsDouble());
    case DataType::kDouble:
      return Compare(col.double_data()[row], op, constant.AsDouble());
    case DataType::kString:
      return constant.is_string() &&
             Compare(col.string_data()[row], op, constant.str());
  }
  return false;
}

std::string Condition::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << schema.field(column).name << " " << CompareOpName(op) << " "
     << constant.ToString();
  return os.str();
}

Predicate Predicate::Range(size_t column, double lo, double hi) {
  Predicate p;
  p.And({column, CompareOp::kGe, Value(lo)});
  p.And({column, CompareOp::kLt, Value(hi)});
  return p;
}

bool Predicate::Matches(const Table& table, size_t row) const {
  for (const Condition& c : conjuncts_) {
    if (!c.Matches(table, row)) return false;
  }
  return true;
}

std::vector<uint32_t> Predicate::SelectPositions(const Table& table) const {
  std::vector<uint32_t> out;
  const size_t n = table.num_rows();
  if (n == 0) return out;
  std::vector<const ColumnVector*> cols;
  cols.reserve(conjuncts_.size());
  for (const Condition& c : conjuncts_) cols.push_back(&table.column(c.column));
  FilterRange(conjuncts_, cols, 0, static_cast<uint32_t>(n), &out);
  return out;
}

namespace {

/// Which dispatched kernel family evaluates a condition, if any. Mirrors
/// the typed branches of Condition::MatchesColumn: int64 columns compared
/// against a double constant are evaluated in double precision, which no
/// int64 kernel reproduces, so they stay on the row-at-a-time path.
enum class KernelKind { kNone, kI64, kF64 };

KernelKind KernelKindFor(const Condition& c, const ColumnVector& col) {
  if (col.type() == DataType::kInt64 && c.constant.is_int64()) {
    return KernelKind::kI64;
  }
  if (col.type() == DataType::kDouble && !c.constant.is_string()) {
    return KernelKind::kF64;
  }
  return KernelKind::kNone;
}

}  // namespace

void Predicate::FilterRange(const std::vector<Condition>& conditions,
                            const std::vector<const ColumnVector*>& cols,
                            uint32_t begin, uint32_t end,
                            std::vector<uint32_t>* out) {
  if (begin >= end) return;
  const size_t old = out->size();
  const uint32_t range = end - begin;
  const simd::KernelTable& kt = simd::ActiveKernels();

  // Fused kernel for the sliding-window idiom `lo <= col < hi` on int64.
  if (conditions.size() == 2 && cols[0] == cols[1] &&
      cols[0]->type() == DataType::kInt64 &&
      conditions[0].op == CompareOp::kGe && conditions[1].op == CompareOp::kLt &&
      conditions[0].constant.is_int64() && conditions[1].constant.is_int64()) {
    out->resize(old + range);
    const uint32_t n = kt.filter_i64_range(
        cols[0]->int64_data().data(), begin, end,
        conditions[0].constant.int64(), conditions[1].constant.int64(),
        out->data() + old);
    out->resize(old + n);
    return;
  }

  // Kernel pipeline: seed the selection vector with the first typed
  // condition's filter kernel, then narrow it in place — typed conditions
  // through refine kernels, anything else row-at-a-time over the survivors.
  size_t seed = conditions.size();
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (KernelKindFor(conditions[i], *cols[i]) != KernelKind::kNone) {
      seed = i;
      break;
    }
  }
  if (seed != conditions.size()) {
    out->resize(old + range);
    uint32_t* base = out->data() + old;
    uint32_t n = 0;
    {
      const Condition& c = conditions[seed];
      const ColumnVector& col = *cols[seed];
      n = KernelKindFor(c, col) == KernelKind::kI64
              ? kt.filter_i64_cmp(col.int64_data().data(), begin, end,
                                  ToSimdCmp(c.op), c.constant.int64(), base)
              : kt.filter_f64_cmp(col.double_data().data(), begin, end,
                                  ToSimdCmp(c.op), c.constant.AsDouble(),
                                  base);
    }
    for (size_t i = 0; i < conditions.size() && n > 0; ++i) {
      if (i == seed) continue;
      const Condition& c = conditions[i];
      const ColumnVector& col = *cols[i];
      switch (KernelKindFor(c, col)) {
        case KernelKind::kI64:
          n = kt.refine_i64_cmp(col.int64_data().data(), base, n,
                                ToSimdCmp(c.op), c.constant.int64(), base);
          break;
        case KernelKind::kF64:
          n = kt.refine_f64_cmp(col.double_data().data(), base, n,
                                ToSimdCmp(c.op), c.constant.AsDouble(), base);
          break;
        case KernelKind::kNone: {
          uint32_t kept = 0;
          for (uint32_t j = 0; j < n; ++j) {
            if (c.MatchesColumn(col, base[j])) base[kept++] = base[j];
          }
          n = kept;
          break;
        }
      }
    }
    out->resize(old + n);
    return;
  }

  // No typed condition (string predicates, int64-vs-double comparisons,
  // empty predicates): row-at-a-time conjunction.
  for (uint32_t r = begin; r < end; ++r) {
    bool hit = true;
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (!conditions[i].MatchesColumn(*cols[i], r)) {
        hit = false;
        break;
      }
    }
    if (hit) out->push_back(r);
  }
}

std::string Predicate::CacheKey() const {
  std::ostringstream os;
  for (const Condition& c : conjuncts_) {
    os << c.column << CompareOpName(c.op) << c.constant.ToString() << ";";
  }
  return os.str();
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conjuncts_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i) out += " AND ";
    out += conjuncts_[i].ToString(schema);
  }
  return out;
}

}  // namespace exploredb
