#include "storage/predicate.h"

#include <sstream>

namespace exploredb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

namespace {

template <typename T>
bool Compare(const T& lhs, CompareOp op, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace

bool Condition::Matches(const Table& table, size_t row) const {
  return MatchesColumn(table.column(column), row);
}

bool Condition::MatchesColumn(const ColumnVector& col, size_t row) const {
  switch (col.type()) {
    case DataType::kInt64:
      // Allow numeric constants of either flavor against int columns.
      if (constant.is_int64()) {
        return Compare(col.int64_data()[row], op, constant.int64());
      }
      return Compare(static_cast<double>(col.int64_data()[row]), op,
                     constant.AsDouble());
    case DataType::kDouble:
      return Compare(col.double_data()[row], op, constant.AsDouble());
    case DataType::kString:
      return constant.is_string() &&
             Compare(col.string_data()[row], op, constant.str());
  }
  return false;
}

std::string Condition::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << schema.field(column).name << " " << CompareOpName(op) << " "
     << constant.ToString();
  return os.str();
}

Predicate Predicate::Range(size_t column, double lo, double hi) {
  Predicate p;
  p.And({column, CompareOp::kGe, Value(lo)});
  p.And({column, CompareOp::kLt, Value(hi)});
  return p;
}

bool Predicate::Matches(const Table& table, size_t row) const {
  for (const Condition& c : conjuncts_) {
    if (!c.Matches(table, row)) return false;
  }
  return true;
}

std::vector<uint32_t> Predicate::SelectPositions(const Table& table) const {
  std::vector<uint32_t> out;
  const size_t n = table.num_rows();
  for (size_t r = 0; r < n; ++r) {
    if (Matches(table, r)) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

std::string Predicate::CacheKey() const {
  std::ostringstream os;
  for (const Condition& c : conjuncts_) {
    os << c.column << CompareOpName(c.op) << c.constant.ToString() << ";";
  }
  return os.str();
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conjuncts_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i) out += " AND ";
    out += conjuncts_[i].ToString(schema);
  }
  return out;
}

}  // namespace exploredb
