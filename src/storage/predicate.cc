#include "storage/predicate.h"

#include <sstream>

namespace exploredb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

namespace {

template <typename T>
bool Compare(const T& lhs, CompareOp op, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace

bool Condition::Matches(const Table& table, size_t row) const {
  return MatchesColumn(table.column(column), row);
}

bool Condition::MatchesColumn(const ColumnVector& col, size_t row) const {
  switch (col.type()) {
    case DataType::kInt64:
      // Allow numeric constants of either flavor against int columns.
      if (constant.is_int64()) {
        return Compare(col.int64_data()[row], op, constant.int64());
      }
      return Compare(static_cast<double>(col.int64_data()[row]), op,
                     constant.AsDouble());
    case DataType::kDouble:
      return Compare(col.double_data()[row], op, constant.AsDouble());
    case DataType::kString:
      return constant.is_string() &&
             Compare(col.string_data()[row], op, constant.str());
  }
  return false;
}

std::string Condition::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << schema.field(column).name << " " << CompareOpName(op) << " "
     << constant.ToString();
  return os.str();
}

Predicate Predicate::Range(size_t column, double lo, double hi) {
  Predicate p;
  p.And({column, CompareOp::kGe, Value(lo)});
  p.And({column, CompareOp::kLt, Value(hi)});
  return p;
}

bool Predicate::Matches(const Table& table, size_t row) const {
  for (const Condition& c : conjuncts_) {
    if (!c.Matches(table, row)) return false;
  }
  return true;
}

std::vector<uint32_t> Predicate::SelectPositions(const Table& table) const {
  std::vector<uint32_t> out;
  const size_t n = table.num_rows();
  for (size_t r = 0; r < n; ++r) {
    if (Matches(table, r)) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

namespace {

/// Tight per-op loop over a typed array; the compiler vectorizes these.
template <typename T, typename Pred>
void FilterTyped(const T* data, uint32_t begin, uint32_t end, Pred pred,
                 std::vector<uint32_t>* out) {
  for (uint32_t r = begin; r < end; ++r) {
    if (pred(data[r])) out->push_back(r);
  }
}

template <typename T>
bool FilterOneComparison(const T* data, CompareOp op, T k, uint32_t begin,
                         uint32_t end, std::vector<uint32_t>* out) {
  switch (op) {
    case CompareOp::kLt:
      FilterTyped(data, begin, end, [k](T v) { return v < k; }, out);
      return true;
    case CompareOp::kLe:
      FilterTyped(data, begin, end, [k](T v) { return v <= k; }, out);
      return true;
    case CompareOp::kGt:
      FilterTyped(data, begin, end, [k](T v) { return v > k; }, out);
      return true;
    case CompareOp::kGe:
      FilterTyped(data, begin, end, [k](T v) { return v >= k; }, out);
      return true;
    case CompareOp::kEq:
      FilterTyped(data, begin, end, [k](T v) { return v == k; }, out);
      return true;
    case CompareOp::kNe:
      FilterTyped(data, begin, end, [k](T v) { return v != k; }, out);
      return true;
  }
  return false;
}

}  // namespace

void Predicate::FilterRange(const std::vector<Condition>& conditions,
                            const std::vector<const ColumnVector*>& cols,
                            uint32_t begin, uint32_t end,
                            std::vector<uint32_t>* out) {
  // Fast path: one typed comparison over a numeric column.
  if (conditions.size() == 1) {
    const Condition& c = conditions[0];
    const ColumnVector& col = *cols[0];
    if (col.type() == DataType::kInt64 && c.constant.is_int64()) {
      if (FilterOneComparison(col.int64_data().data(), c.op,
                              c.constant.int64(), begin, end, out)) {
        return;
      }
    } else if (col.type() == DataType::kDouble && !c.constant.is_string()) {
      if (FilterOneComparison(col.double_data().data(), c.op,
                              c.constant.AsDouble(), begin, end, out)) {
        return;
      }
    }
  }
  // Fast path: the sliding-window idiom `lo <= col < hi` on one int64 column.
  if (conditions.size() == 2 && cols[0] == cols[1] &&
      cols[0]->type() == DataType::kInt64 &&
      conditions[0].op == CompareOp::kGe && conditions[1].op == CompareOp::kLt &&
      conditions[0].constant.is_int64() && conditions[1].constant.is_int64()) {
    const int64_t* data = cols[0]->int64_data().data();
    const int64_t lo = conditions[0].constant.int64();
    const int64_t hi = conditions[1].constant.int64();
    FilterTyped(
        data, begin, end, [lo, hi](int64_t v) { return v >= lo && v < hi; },
        out);
    return;
  }
  // General path: row-at-a-time conjunction.
  for (uint32_t r = begin; r < end; ++r) {
    bool hit = true;
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (!conditions[i].MatchesColumn(*cols[i], r)) {
        hit = false;
        break;
      }
    }
    if (hit) out->push_back(r);
  }
}

std::string Predicate::CacheKey() const {
  std::ostringstream os;
  for (const Condition& c : conjuncts_) {
    os << c.column << CompareOpName(c.op) << c.constant.ToString() << ";";
  }
  return os.str();
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conjuncts_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i) out += " AND ";
    out += conjuncts_[i].ToString(schema);
  }
  return out;
}

}  // namespace exploredb
