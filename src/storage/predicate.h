#ifndef EXPLOREDB_STORAGE_PREDICATE_H_
#define EXPLOREDB_STORAGE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "simd/simd.h"
#include "storage/table.h"

namespace exploredb {

/// Comparison operators for single-column conditions.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpName(CompareOp op);

/// Maps a predicate operator onto the SIMD kernel vocabulary.
simd::Cmp ToSimdCmp(CompareOp op);

/// `column <op> constant` — one conjunct of a selection predicate.
struct Condition {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;

  /// True when the cell at (row, column) of `table` satisfies the condition.
  bool Matches(const Table& table, size_t row) const;

  /// Same check against a bare column (used by executors that fetch columns
  /// lazily and by raw-backed tables).
  bool MatchesColumn(const ColumnVector& col, size_t row) const;

  std::string ToString(const Schema& schema) const;
};

/// Conjunction of conditions — the predicate language of exploratory range
/// queries in the surveyed systems (multidimensional windows, cracking
/// selections, explore-by-example regions).
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Condition> conjuncts)
      : conjuncts_(std::move(conjuncts)) {}

  /// Convenience: lo <= column < hi on a numeric column.
  static Predicate Range(size_t column, double lo, double hi);

  Predicate& And(Condition c) {
    conjuncts_.push_back(std::move(c));
    return *this;
  }

  const std::vector<Condition>& conjuncts() const { return conjuncts_; }
  bool empty() const { return conjuncts_.empty(); }

  bool Matches(const Table& table, size_t row) const;

  /// Positions of all matching rows, in row order.
  std::vector<uint32_t> SelectPositions(const Table& table) const;

  /// Appends to *out the positions in [begin, end) satisfying every condition
  /// in `conditions` (`cols` holds each condition's column, in parallel
  /// order). This is the morsel kernel of the parallel executor: every morsel
  /// appends into its own buffer, and the buffers concatenated in morsel
  /// order are exactly the serial scan's output. Typed fast paths cover the
  /// dominant exploration shapes (single comparison, int64 range window).
  static void FilterRange(const std::vector<Condition>& conditions,
                          const std::vector<const ColumnVector*>& cols,
                          uint32_t begin, uint32_t end,
                          std::vector<uint32_t>* out);

  /// Canonical key for caching (column/op/constant triples).
  std::string CacheKey() const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Condition> conjuncts_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_PREDICATE_H_
