#ifndef EXPLOREDB_STORAGE_COLUMN_H_
#define EXPLOREDB_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace exploredb {

/// A single typed column stored contiguously. The unit of work for the
/// adaptive-indexing (cracking) and layout subsystems.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  /// Appends `v`; fails with InvalidArgument on a type mismatch.
  Status Append(const Value& v);

  /// Typed appends (no dispatch); caller must match the column type.
  void AppendInt64(int64_t v) { int64_data_.push_back(v); }
  void AppendDouble(double v) { double_data_.push_back(v); }
  void AppendString(std::string v) { string_data_.push_back(std::move(v)); }

  /// Dynamically typed cell read.
  Value GetValue(size_t row) const;

  /// Numeric view of a cell (int64 widened); must not be used on strings.
  double GetDouble(size_t row) const;

  /// Direct typed access for inner loops.
  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<std::string>& string_data() const { return string_data_; }
  std::vector<int64_t>* mutable_int64_data() { return &int64_data_; }
  std::vector<double>* mutable_double_data() { return &double_data_; }
  std::vector<std::string>* mutable_string_data() { return &string_data_; }

  void Reserve(size_t n);

  /// New column containing rows at `positions`, in order.
  ColumnVector Gather(const std::vector<uint32_t>& positions) const;

 private:
  DataType type_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
};

/// Dictionary-encoded view of a string column: codes[row] indexes values
/// (first-appearance order). Grouped aggregation runs over the dense integer
/// codes instead of hashing a string per row, converting back to display
/// strings only at result build.
struct DictEncoded {
  std::vector<uint32_t> codes;
  std::vector<std::string> values;
};

/// One-pass dictionary encoding of a string array.
DictEncoded DictEncode(const std::vector<std::string>& data);

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_COLUMN_H_
