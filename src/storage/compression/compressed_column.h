#ifndef EXPLOREDB_STORAGE_COMPRESSION_COMPRESSED_COLUMN_H_
#define EXPLOREDB_STORAGE_COMPRESSION_COMPRESSED_COLUMN_H_

// Lightweight columnar compression with scans that run on the compressed
// representation (DESIGN.md §2g). Columns are cut into fixed 8192-row blocks
// (the zone-map width, so every block carries its min/max synopsis for
// free), and each block independently picks the cheaper of two codecs:
//
//  - kFor:  frame-of-reference + bit-packing. Deltas v - min are packed at
//           the block's exact bit width; range predicates are rewritten into
//           the delta domain and evaluated on the packed words
//           (simd filter_packed_i64) so non-matching rows are never
//           decompressed.
//  - kRle:  run-length encoding for sorted/clustered data. A predicate is
//           evaluated once per run header; matching runs emit position
//           ranges without touching row data at all.
//
// String columns promote the former GROUP BY-only `DictEncoded` cache to a
// first-class representation: codes + dictionary live here, equality
// predicates compare uint32 codes, and HashGroupBy reads codes straight from
// storage.
//
// All codecs are exact (integers, no quantization), so compressed scans are
// bit-identical to raw scans on every SIMD tier and thread count.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/predicate.h"

namespace exploredb {

/// Rows per compressed block. Equal to ZoneMap::kDefaultZoneRows so block
/// synopses and zone maps describe the same row ranges.
inline constexpr size_t kCompressionBlockRows = 8192;

/// Unpack granularity inside a FOR block: surviving rows are decoded one
/// 128-row sub-block at a time into thread-local scratch (one or two cache
/// lines of packed input per step at typical widths).
inline constexpr size_t kUnpackSubBlockRows = 128;

/// Per-block codec choice (made independently per 8192-row block).
enum class BlockCodec : uint8_t { kFor, kRle };

/// One RLE run: `end` is the EXCLUSIVE row offset within the block where the
/// run stops, so run r covers [runs[r-1].end, runs[r].end) and lookups can
/// binary-search the ends.
struct RleRun {
  int64_t value;
  uint32_t end;
};

/// Header of one 8192-row (or trailing shorter) block. FOR blocks reference
/// a range of the column's shared word pool, RLE blocks a range of the
/// shared run pool.
struct Int64Block {
  BlockCodec codec = BlockCodec::kFor;
  uint8_t width = 0;       // FOR delta bit width, 0..64 (0: all rows == min)
  uint32_t rows = 0;       // rows in this block
  int64_t min = 0;         // block min; also the FOR frame
  int64_t max = 0;
  size_t words = 0;        // kFor: first word in the shared pool
  uint32_t first_run = 0;  // kRle: first run in the shared pool
  uint32_t num_runs = 0;   // kRle: run count
};

/// How EXPLOREDB_COMPRESS gates the int64 representations:
///   "0"    -> kOff      never scan compressed (dictionaries still built)
///   "1"    -> kForced   compress every int64 column regardless of ratio
///   unset  -> kAdaptive compress when the achieved ratio clears ~1.25x
enum class CompressionPolicy { kOff, kAdaptive, kForced };

/// The policy from the environment, read once per process.
CompressionPolicy CompressionPolicyFromEnv();

/// A compressed int64 column: block headers plus shared word/run pools. The
/// filter entry points mirror Predicate::FilterRange's morsel contract —
/// they append matching GLOBAL row ids for [begin, end) in row order, and
/// emit exactly the rows a raw scan would.
class CompressedInt64Column {
 public:
  static CompressedInt64Column Encode(const std::vector<int64_t>& data);

  size_t num_rows() const { return num_rows_; }
  size_t num_blocks() const { return blocks_.size(); }
  const Int64Block& block(size_t i) const { return blocks_[i]; }

  /// Appends row ids r in [begin, end) with value(r) `op` k. Works block by
  /// block: min/max short-circuits first, then RLE run headers or a
  /// packed-domain FOR filter — rows of non-qualifying blocks/runs are never
  /// decoded.
  void FilterCmp(uint32_t begin, uint32_t end, CompareOp op, int64_t k,
                 std::vector<uint32_t>* out) const;

  /// The fused window idiom lo <= value < hi.
  void FilterRange(uint32_t begin, uint32_t end, int64_t lo, int64_t hi,
                   std::vector<uint32_t>* out) const;

  /// out[i] = value at row sel[i]; `sel` must be ascending (a selection
  /// vector). Decodes each touched 128-row sub-block once into thread-local
  /// scratch; RLE blocks are served from run headers.
  void Gather(const uint32_t* sel, uint32_t n, int64_t* out) const;

  /// Decodes rows [begin, end) into out (must hold end - begin values).
  void Decode(uint32_t begin, uint32_t end, int64_t* out) const;

  /// Estimated fraction of rows with value `op` k. EXACT for RLE blocks (run
  /// headers give true match counts); uniform-within-bounds model for FOR
  /// blocks — strictly better than the zone map's estimate on clustered
  /// data.
  double EstimateSelectivity(CompareOp op, int64_t k) const;

  size_t raw_bytes() const { return num_rows_ * sizeof(int64_t); }
  size_t compressed_bytes() const;
  double compression_ratio() const;
  /// Number of blocks that chose the RLE codec.
  size_t rle_block_count() const;

  /// Structural invariants (blocks cover [0, num_rows), run ends strictly
  /// ascending and covering, widths fit the bounds); with `data`, a full
  /// decode must reproduce the column exactly.
  Status Validate(const std::vector<int64_t>* data = nullptr) const;

 private:
  size_t num_rows_ = 0;
  std::vector<Int64Block> blocks_;
  std::vector<uint64_t> words_;  // packed FOR deltas (+1 guard word/block)
  std::vector<RleRun> runs_;
};

/// A string column stored as dictionary codes: `DictEncoded` promoted to the
/// storage layer. Equality/inequality predicates compare uint32 codes (a
/// constant absent from the dictionary matches nothing / everything);
/// ordering predicates are not served — codes are first-appearance order.
class CompressedStringColumn {
 public:
  static CompressedStringColumn Encode(const std::vector<std::string>& data);

  size_t num_rows() const { return dict_.codes.size(); }
  const DictEncoded& dict() const { return dict_; }

  /// Code of `s`, or nullopt when the value never occurs in the column.
  std::optional<uint32_t> CodeOf(const std::string& s) const;

  /// Appends row ids r in [begin, end) with code(r) == `code` (or != when
  /// `negate`).
  void FilterEqCode(uint32_t begin, uint32_t end, uint32_t code, bool negate,
                    std::vector<uint32_t>* out) const;

  size_t raw_bytes() const;
  size_t compressed_bytes() const;

  Status Validate(const std::vector<std::string>* data = nullptr) const;

 private:
  DictEncoded dict_;
  std::unordered_map<std::string, uint32_t> code_of_;
};

/// Type-dispatching wrapper a TableEntry caches per column. Build() returns
/// nullptr when the column has no compressed representation (doubles; int64
/// under kOff, or under kAdaptive when the achieved ratio is too small).
/// String columns always build — the dictionary is the GROUP BY input — but
/// scanning on codes still honors the policy via scan_enabled().
class CompressedColumn {
 public:
  static std::unique_ptr<CompressedColumn> Build(const ColumnVector& col);

  const CompressedInt64Column* i64() const { return i64_.get(); }
  const CompressedStringColumn* str() const { return str_.get(); }

  /// False when EXPLOREDB_COMPRESS=0: the representation exists (dict for
  /// GROUP BY) but scans must not use it.
  bool scan_enabled() const { return scan_enabled_; }

  size_t raw_bytes() const;
  size_t compressed_bytes() const;

  Status Validate(const ColumnVector& col) const;

 private:
  std::unique_ptr<CompressedInt64Column> i64_;
  std::unique_ptr<CompressedStringColumn> str_;
  bool scan_enabled_ = true;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_COMPRESSION_COMPRESSED_COLUMN_H_
