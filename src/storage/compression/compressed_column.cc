#include "storage/compression/compressed_column.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/metrics.h"
#include "simd/simd.h"
#include "storage/zone_map.h"

namespace exploredb {

namespace {

/// Unsigned FOR delta of `v` against frame `f` (two's-complement wrap, so
/// INT64_MIN..INT64_MAX ranges work).
inline uint64_t DeltaOf(int64_t v, int64_t f) {
  return static_cast<uint64_t>(v) - static_cast<uint64_t>(f);
}

inline bool MatchesI64(int64_t v, CompareOp op, int64_t k) {
  switch (op) {
    case CompareOp::kLt:
      return v < k;
    case CompareOp::kLe:
      return v <= k;
    case CompareOp::kGt:
      return v > k;
    case CompareOp::kGe:
      return v >= k;
    case CompareOp::kEq:
      return v == k;
    case CompareOp::kNe:
      return v != k;
  }
  return false;
}

/// Block-level outcome from the min/max synopsis alone.
enum class BlockVerdict { kNone, kAll, kSome };

BlockVerdict ClassifyCmp(int64_t mn, int64_t mx, CompareOp op, int64_t k) {
  switch (op) {
    case CompareOp::kLt:
      if (mx < k) return BlockVerdict::kAll;
      if (mn >= k) return BlockVerdict::kNone;
      break;
    case CompareOp::kLe:
      if (mx <= k) return BlockVerdict::kAll;
      if (mn > k) return BlockVerdict::kNone;
      break;
    case CompareOp::kGt:
      if (mn > k) return BlockVerdict::kAll;
      if (mx <= k) return BlockVerdict::kNone;
      break;
    case CompareOp::kGe:
      if (mn >= k) return BlockVerdict::kAll;
      if (mx < k) return BlockVerdict::kNone;
      break;
    case CompareOp::kEq:
      if (mn == k && mx == k) return BlockVerdict::kAll;
      if (k < mn || k > mx) return BlockVerdict::kNone;
      break;
    case CompareOp::kNe:
      if (mn == k && mx == k) return BlockVerdict::kNone;
      if (k < mn || k > mx) return BlockVerdict::kAll;
      break;
  }
  return BlockVerdict::kSome;
}

inline void AppendRange(std::vector<uint32_t>* out, uint32_t s, uint32_t e) {
  // Bulk-resize then fill: the fill loop vectorizes, and a whole matching
  // run appends without per-element capacity checks.
  const size_t base = out->size();
  out->resize(base + (e - s));
  uint32_t* p = out->data() + base;
  for (uint32_t r = s; r < e; ++r) *p++ = r;
}

Counter* RleSkipCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_storage_blocks_skipped_rle_total",
      "RLE blocks filtered from run headers alone, rows never decoded");
  return c;
}

}  // namespace

CompressionPolicy CompressionPolicyFromEnv() {
  static const CompressionPolicy policy = [] {
    const char* env = std::getenv("EXPLOREDB_COMPRESS");
    if (env == nullptr) return CompressionPolicy::kAdaptive;
    if (std::strcmp(env, "0") == 0) return CompressionPolicy::kOff;
    if (std::strcmp(env, "1") == 0) return CompressionPolicy::kForced;
    return CompressionPolicy::kAdaptive;
  }();
  return policy;
}

CompressedInt64Column CompressedInt64Column::Encode(
    const std::vector<int64_t>& data) {
  CompressedInt64Column col;
  col.num_rows_ = data.size();
  const simd::KernelTable& kt = simd::ActiveKernels();
  for (size_t base = 0; base < data.size(); base += kCompressionBlockRows) {
    const uint32_t rows = static_cast<uint32_t>(
        std::min(kCompressionBlockRows, data.size() - base));
    const int64_t* d = data.data() + base;
    Int64Block b;
    b.rows = rows;
    kt.minmax_i64(d, rows, &b.min, &b.max);
    uint32_t num_runs = 1;
    for (uint32_t i = 1; i < rows; ++i) num_runs += d[i] != d[i - 1] ? 1 : 0;
    const uint64_t max_delta = DeltaOf(b.max, b.min);
    const uint32_t width = static_cast<uint32_t>(std::bit_width(max_delta));
    const size_t for_words =
        (static_cast<size_t>(rows) * width + 63) / 64 + 1;  // +1 guard word
    const size_t for_bytes = for_words * sizeof(uint64_t);
    const size_t rle_bytes = static_cast<size_t>(num_runs) * sizeof(RleRun);
    if (rle_bytes < for_bytes) {
      b.codec = BlockCodec::kRle;
      b.first_run = static_cast<uint32_t>(col.runs_.size());
      b.num_runs = num_runs;
      uint32_t i = 0;
      while (i < rows) {
        const int64_t v = d[i];
        uint32_t e = i + 1;
        while (e < rows && d[e] == v) ++e;
        col.runs_.push_back(RleRun{v, e});
        i = e;
      }
    } else {
      b.codec = BlockCodec::kFor;
      b.width = static_cast<uint8_t>(width);
      b.words = col.words_.size();
      col.words_.resize(col.words_.size() + for_words, 0);
      uint64_t* w = col.words_.data() + b.words;
      if (width > 0) {
        for (uint32_t i = 0; i < rows; ++i) {
          const uint64_t delta = DeltaOf(d[i], b.min);
          const uint64_t bit = static_cast<uint64_t>(i) * width;
          const uint64_t wd = bit >> 6;
          const uint32_t o = static_cast<uint32_t>(bit & 63);
          w[wd] |= delta << o;
          if (o + width > 64) w[wd + 1] |= delta >> (64 - o);
        }
      }
    }
    col.blocks_.push_back(b);
  }
  return col;
}

size_t CompressedInt64Column::compressed_bytes() const {
  return blocks_.size() * sizeof(Int64Block) +
         words_.size() * sizeof(uint64_t) + runs_.size() * sizeof(RleRun);
}

double CompressedInt64Column::compression_ratio() const {
  const size_t c = compressed_bytes();
  return c > 0 ? static_cast<double>(raw_bytes()) / static_cast<double>(c)
               : 1.0;
}

size_t CompressedInt64Column::rle_block_count() const {
  size_t n = 0;
  for (const Int64Block& b : blocks_) n += b.codec == BlockCodec::kRle ? 1 : 0;
  return n;
}

namespace {

/// Emits the rows of one RLE block whose run value satisfies the per-run
/// predicate, clipped to local rows [ls, le), as global ids base + local.
template <typename RunPred>
void FilterRleBlock(const RleRun* runs, uint32_t num_runs, uint32_t base,
                    uint32_t ls, uint32_t le, RunPred pred,
                    std::vector<uint32_t>* out) {
  uint32_t run_begin = 0;
  for (uint32_t r = 0; r < num_runs && run_begin < le; ++r) {
    const uint32_t run_end = runs[r].end;
    if (run_end > ls && pred(runs[r].value)) {
      const uint32_t s = std::max(run_begin, ls);
      const uint32_t e = std::min(run_end, le);
      AppendRange(out, base + s, base + e);
    }
    run_begin = run_end;
  }
  RleSkipCounter()->Add(1);
}

/// Packed-domain filter of one FOR block region: local rows [ls, le) whose
/// delta lies in the inclusive [dlo, dhi], appended as global ids.
void FilterForBlock(const uint64_t* words, uint8_t width, uint32_t base,
                    uint32_t ls, uint32_t le, uint64_t dlo, uint64_t dhi,
                    std::vector<uint32_t>* out) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  const uint32_t n = le - ls;
  const size_t old = out->size();
  out->resize(old + n);
  const uint32_t cnt = kt.filter_packed_i64(words, ls, n, width, dlo, dhi,
                                            base + ls, out->data() + old);
  out->resize(old + cnt);
}

/// Rare path (kNe inside the block's value range): decode the local rows and
/// run the ordinary compare kernel over the scratch.
void FilterForBlockDecoded(const uint64_t* words, uint8_t width, int64_t frame,
                           uint32_t base, uint32_t ls, uint32_t le,
                           CompareOp op, int64_t k,
                           std::vector<uint32_t>* out) {
  static thread_local std::vector<int64_t> scratch;
  const uint32_t n = le - ls;
  scratch.resize(n);
  const simd::KernelTable& kt = simd::ActiveKernels();
  kt.unpack_for_i64(words, ls, n, width, frame, scratch.data());
  const size_t old = out->size();
  out->resize(old + n);
  const uint32_t cnt = kt.filter_i64_cmp(scratch.data(), 0, n, ToSimdCmp(op),
                                         k, out->data() + old);
  uint32_t* o = out->data() + old;
  for (uint32_t i = 0; i < cnt; ++i) o[i] += base + ls;
  out->resize(old + cnt);
}

}  // namespace

void CompressedInt64Column::FilterCmp(uint32_t begin, uint32_t end,
                                      CompareOp op, int64_t k,
                                      std::vector<uint32_t>* out) const {
  const uint32_t lim =
      std::min(end, static_cast<uint32_t>(num_rows_));
  for (uint32_t pos = begin; pos < lim;) {
    const size_t bi = pos / kCompressionBlockRows;
    const Int64Block& b = blocks_[bi];
    const uint32_t block_base =
        static_cast<uint32_t>(bi * kCompressionBlockRows);
    const uint32_t s = pos;
    const uint32_t e = std::min(lim, block_base + b.rows);
    pos = e;
    switch (ClassifyCmp(b.min, b.max, op, k)) {
      case BlockVerdict::kNone:
        continue;
      case BlockVerdict::kAll:
        AppendRange(out, s, e);
        continue;
      case BlockVerdict::kSome:
        break;
    }
    const uint32_t ls = s - block_base;
    const uint32_t le = e - block_base;
    if (b.codec == BlockCodec::kRle) {
      FilterRleBlock(runs_.data() + b.first_run, b.num_runs, block_base, ls,
                     le, [&](int64_t v) { return MatchesI64(v, op, k); }, out);
      continue;
    }
    // Rewrite the predicate into the delta domain. The kSome verdict pins k
    // strictly inside the block's range for each op, so every subtraction
    // below is non-negative.
    const uint64_t dk = DeltaOf(k, b.min);
    const uint64_t max_delta = DeltaOf(b.max, b.min);
    uint64_t dlo = 0;
    uint64_t dhi = max_delta;
    switch (op) {
      case CompareOp::kLt:
        dhi = dk - 1;
        break;
      case CompareOp::kLe:
        dhi = dk;
        break;
      case CompareOp::kGt:
        dlo = dk + 1;
        break;
      case CompareOp::kGe:
        dlo = dk;
        break;
      case CompareOp::kEq:
        dlo = dhi = dk;
        break;
      case CompareOp::kNe:
        // Two disjoint delta intervals; decode instead (kNe inside the value
        // range is rare in exploration workloads).
        FilterForBlockDecoded(words_.data() + b.words, b.width, b.min,
                              block_base, ls, le, op, k, out);
        continue;
    }
    FilterForBlock(words_.data() + b.words, b.width, block_base, ls, le, dlo,
                   dhi, out);
  }
}

void CompressedInt64Column::FilterRange(uint32_t begin, uint32_t end,
                                        int64_t lo, int64_t hi,
                                        std::vector<uint32_t>* out) const {
  const uint32_t lim =
      std::min(end, static_cast<uint32_t>(num_rows_));
  for (uint32_t pos = begin; pos < lim;) {
    const size_t bi = pos / kCompressionBlockRows;
    const Int64Block& b = blocks_[bi];
    const uint32_t block_base =
        static_cast<uint32_t>(bi * kCompressionBlockRows);
    const uint32_t s = pos;
    const uint32_t e = std::min(lim, block_base + b.rows);
    pos = e;
    if (b.min >= hi || b.max < lo) continue;  // no row in lo <= v < hi
    if (b.min >= lo && b.max < hi) {
      AppendRange(out, s, e);
      continue;
    }
    const uint32_t ls = s - block_base;
    const uint32_t le = e - block_base;
    if (b.codec == BlockCodec::kRle) {
      FilterRleBlock(runs_.data() + b.first_run, b.num_runs, block_base, ls,
                     le, [&](int64_t v) { return v >= lo && v < hi; }, out);
      continue;
    }
    // Not-none pins b.min < hi and b.max >= lo, so both deltas are valid.
    const uint64_t dlo = lo <= b.min ? 0 : DeltaOf(lo, b.min);
    const uint64_t dhi =
        hi > b.max ? DeltaOf(b.max, b.min) : DeltaOf(hi, b.min) - 1;
    FilterForBlock(words_.data() + b.words, b.width, block_base, ls, le, dlo,
                   dhi, out);
  }
}

void CompressedInt64Column::Gather(const uint32_t* sel, uint32_t n,
                                   int64_t* out) const {
  if (n == 0) return;
  // Window predicates select contiguous row ranges; an ascending selection
  // spanning exactly n rows is one such run, and decoding it straight into
  // `out` skips the per-position sub-block scratch entirely.
  if (sel[n - 1] - sel[0] + 1 == n) {
    Decode(sel[0], sel[0] + n, out);
    return;
  }
  static thread_local std::vector<int64_t> sub;
  sub.resize(kUnpackSubBlockRows);
  const simd::KernelTable& kt = simd::ActiveKernels();
  uint32_t i = 0;
  while (i < n) {
    const size_t bi = sel[i] / kCompressionBlockRows;
    const Int64Block& b = blocks_[bi];
    const uint32_t block_base =
        static_cast<uint32_t>(bi * kCompressionBlockRows);
    const uint32_t block_end = block_base + b.rows;
    if (b.codec == BlockCodec::kRle) {
      const RleRun* runs = runs_.data() + b.first_run;
      uint32_t r = 0;
      while (i < n && sel[i] < block_end) {
        const uint32_t local = sel[i] - block_base;
        while (runs[r].end <= local) ++r;  // sel ascending: r only advances
        out[i] = runs[r].value;
        ++i;
      }
      continue;
    }
    while (i < n && sel[i] < block_end) {
      // Decode the 128-row sub-block around sel[i] once, then serve every
      // selected row that falls inside it.
      const uint32_t sb = (sel[i] - block_base) /
                          kUnpackSubBlockRows * kUnpackSubBlockRows;
      const uint32_t sbn = static_cast<uint32_t>(
          std::min(kUnpackSubBlockRows, static_cast<size_t>(b.rows - sb)));
      kt.unpack_for_i64(words_.data() + b.words, sb, sbn, b.width, b.min,
                        sub.data());
      const uint32_t sub_end = block_base + sb + sbn;
      while (i < n && sel[i] < sub_end) {
        out[i] = sub[sel[i] - block_base - sb];
        ++i;
      }
    }
  }
}

void CompressedInt64Column::Decode(uint32_t begin, uint32_t end,
                                   int64_t* out) const {
  const simd::KernelTable& kt = simd::ActiveKernels();
  for (uint32_t pos = begin; pos < end;) {
    const size_t bi = pos / kCompressionBlockRows;
    const Int64Block& b = blocks_[bi];
    const uint32_t block_base =
        static_cast<uint32_t>(bi * kCompressionBlockRows);
    const uint32_t e = std::min(end, block_base + b.rows);
    const uint32_t ls = pos - block_base;
    const uint32_t le = e - block_base;
    int64_t* o = out + (pos - begin);
    if (b.codec == BlockCodec::kFor) {
      kt.unpack_for_i64(words_.data() + b.words, ls, le - ls, b.width, b.min,
                        o);
    } else {
      const RleRun* runs = runs_.data() + b.first_run;
      uint32_t run_begin = 0;
      for (uint32_t r = 0; r < b.num_runs && run_begin < le; ++r) {
        const uint32_t run_end = runs[r].end;
        for (uint32_t x = std::max(run_begin, ls); x < std::min(run_end, le);
             ++x) {
          o[x - ls] = runs[r].value;
        }
        run_begin = run_end;
      }
    }
    pos = e;
  }
}

double CompressedInt64Column::EstimateSelectivity(CompareOp op,
                                                  int64_t k) const {
  if (num_rows_ == 0) return 1.0;
  double expected = 0;
  for (const Int64Block& b : blocks_) {
    switch (ClassifyCmp(b.min, b.max, op, k)) {
      case BlockVerdict::kNone:
        continue;
      case BlockVerdict::kAll:
        expected += b.rows;
        continue;
      case BlockVerdict::kSome:
        break;
    }
    if (b.codec == BlockCodec::kRle) {
      // Run headers give the exact match count.
      const RleRun* runs = runs_.data() + b.first_run;
      uint32_t run_begin = 0;
      for (uint32_t r = 0; r < b.num_runs; ++r) {
        if (MatchesI64(runs[r].value, op, k)) {
          expected += runs[r].end - run_begin;
        }
        run_begin = runs[r].end;
      }
    } else {
      expected += UniformSelectivityFraction(static_cast<double>(b.min),
                                             static_cast<double>(b.max), op,
                                             static_cast<double>(k)) *
                  static_cast<double>(b.rows);
    }
  }
  return std::clamp(expected / static_cast<double>(num_rows_), 0.0, 1.0);
}

Status CompressedInt64Column::Validate(
    const std::vector<int64_t>* data) const {
  size_t covered = 0;
  for (size_t bi = 0; bi < blocks_.size(); ++bi) {
    const Int64Block& b = blocks_[bi];
    const bool last = bi + 1 == blocks_.size();
    if (b.rows == 0 || b.rows > kCompressionBlockRows ||
        (!last && b.rows != kCompressionBlockRows)) {
      return Status::Internal("compressed column: block " +
                              std::to_string(bi) + " has bad row count " +
                              std::to_string(b.rows));
    }
    if (b.min > b.max) {
      return Status::Internal("compressed column: block " +
                              std::to_string(bi) + " has min > max");
    }
    if (b.codec == BlockCodec::kFor) {
      const uint64_t max_delta = DeltaOf(b.max, b.min);
      if (b.width > 64 || std::bit_width(max_delta) > b.width) {
        return Status::Internal("compressed column: block " +
                                std::to_string(bi) + " width " +
                                std::to_string(b.width) +
                                " cannot hold its delta range");
      }
      const size_t need =
          (static_cast<size_t>(b.rows) * b.width + 63) / 64 + 1;
      if (b.words + need > words_.size()) {
        return Status::Internal("compressed column: block " +
                                std::to_string(bi) +
                                " word range exceeds the pool");
      }
    } else {
      if (b.num_runs == 0 ||
          static_cast<size_t>(b.first_run) + b.num_runs > runs_.size()) {
        return Status::Internal("compressed column: block " +
                                std::to_string(bi) + " run range invalid");
      }
      uint32_t prev_end = 0;
      for (uint32_t r = 0; r < b.num_runs; ++r) {
        const RleRun& run = runs_[b.first_run + r];
        if (run.end <= prev_end || run.value < b.min || run.value > b.max) {
          return Status::Internal("compressed column: block " +
                                  std::to_string(bi) + " run " +
                                  std::to_string(r) + " malformed");
        }
        if (r > 0 && run.value == runs_[b.first_run + r - 1].value) {
          return Status::Internal("compressed column: block " +
                                  std::to_string(bi) +
                                  " adjacent runs share a value");
        }
        prev_end = run.end;
      }
      if (prev_end != b.rows) {
        return Status::Internal("compressed column: block " +
                                std::to_string(bi) +
                                " runs do not cover its rows");
      }
    }
    covered += b.rows;
  }
  if (covered != num_rows_) {
    return Status::Internal(
        "compressed column: blocks cover " + std::to_string(covered) +
        " rows, column has " + std::to_string(num_rows_));
  }
  if (data != nullptr) {
    if (data->size() != num_rows_) {
      return Status::Internal("compressed column: row count changed since "
                              "encode");
    }
    std::vector<int64_t> decoded(num_rows_);
    if (num_rows_ > 0) {
      Decode(0, static_cast<uint32_t>(num_rows_), decoded.data());
    }
    for (size_t i = 0; i < num_rows_; ++i) {
      if (decoded[i] != (*data)[i]) {
        return Status::Internal("compressed column: decode mismatch at row " +
                                std::to_string(i));
      }
    }
  }
  return Status::OK();
}

CompressedStringColumn CompressedStringColumn::Encode(
    const std::vector<std::string>& data) {
  CompressedStringColumn col;
  col.dict_ = DictEncode(data);
  col.code_of_.reserve(col.dict_.values.size());
  for (uint32_t c = 0; c < col.dict_.values.size(); ++c) {
    col.code_of_.emplace(col.dict_.values[c], c);
  }
  return col;
}

std::optional<uint32_t> CompressedStringColumn::CodeOf(
    const std::string& s) const {
  const auto it = code_of_.find(s);
  if (it == code_of_.end()) return std::nullopt;
  return it->second;
}

void CompressedStringColumn::FilterEqCode(uint32_t begin, uint32_t end,
                                          uint32_t code, bool negate,
                                          std::vector<uint32_t>* out) const {
  const uint32_t* codes = dict_.codes.data();
  const uint32_t lim =
      std::min(end, static_cast<uint32_t>(dict_.codes.size()));
  if (negate) {
    for (uint32_t r = begin; r < lim; ++r) {
      if (codes[r] != code) out->push_back(r);
    }
  } else {
    for (uint32_t r = begin; r < lim; ++r) {
      if (codes[r] == code) out->push_back(r);
    }
  }
}

size_t CompressedStringColumn::raw_bytes() const {
  size_t bytes = 0;
  for (uint32_t c : dict_.codes) bytes += dict_.values[c].size();
  return bytes;
}

size_t CompressedStringColumn::compressed_bytes() const {
  size_t bytes = dict_.codes.size() * sizeof(uint32_t);
  for (const std::string& v : dict_.values) bytes += v.size();
  return bytes;
}

Status CompressedStringColumn::Validate(
    const std::vector<std::string>* data) const {
  for (size_t i = 0; i < dict_.codes.size(); ++i) {
    if (dict_.codes[i] >= dict_.values.size()) {
      return Status::Internal("dict column: code out of range at row " +
                              std::to_string(i));
    }
  }
  if (code_of_.size() != dict_.values.size()) {
    return Status::Internal("dict column: reverse map size mismatch");
  }
  for (uint32_t c = 0; c < dict_.values.size(); ++c) {
    const auto it = code_of_.find(dict_.values[c]);
    if (it == code_of_.end() || it->second != c) {
      return Status::Internal("dict column: reverse map disagrees at code " +
                              std::to_string(c));
    }
  }
  if (data != nullptr) {
    if (data->size() != dict_.codes.size()) {
      return Status::Internal("dict column: row count changed since encode");
    }
    for (size_t i = 0; i < data->size(); ++i) {
      if (dict_.values[dict_.codes[i]] != (*data)[i]) {
        return Status::Internal("dict column: decode mismatch at row " +
                                std::to_string(i));
      }
    }
  }
  return Status::OK();
}

std::unique_ptr<CompressedColumn> CompressedColumn::Build(
    const ColumnVector& col) {
  const CompressionPolicy policy = CompressionPolicyFromEnv();
  auto out = std::unique_ptr<CompressedColumn>(new CompressedColumn());
  switch (col.type()) {
    case DataType::kDouble:
      return nullptr;  // no double codec (yet): raw scan path
    case DataType::kInt64: {
      if (policy == CompressionPolicy::kOff) return nullptr;
      auto enc = std::make_unique<CompressedInt64Column>(
          CompressedInt64Column::Encode(col.int64_data()));
      if (policy == CompressionPolicy::kAdaptive &&
          enc->compression_ratio() < 1.25) {
        return nullptr;  // not worth the extra copy; caller caches the miss
      }
      out->i64_ = std::move(enc);
      break;
    }
    case DataType::kString: {
      // Always built: the dictionary doubles as the GROUP BY input, which
      // must exist even with compression off; kOff only disables scans.
      out->str_ = std::make_unique<CompressedStringColumn>(
          CompressedStringColumn::Encode(col.string_data()));
      out->scan_enabled_ = policy != CompressionPolicy::kOff;
      break;
    }
  }
  static Counter* blocks = Metrics().GetCounter(
      "exploredb_storage_compressed_blocks_total",
      "8192-row blocks encoded into a compressed representation");
  static Counter* bytes_raw = Metrics().GetCounter(
      "exploredb_storage_raw_bytes_total",
      "uncompressed bytes of columns given a compressed representation");
  static Counter* bytes_comp = Metrics().GetCounter(
      "exploredb_storage_compressed_bytes_total",
      "bytes of the compressed representations");
  if (out->i64_ != nullptr) blocks->Add(out->i64_->num_blocks());
  if (out->str_ != nullptr) {
    blocks->Add((out->str_->num_rows() + kCompressionBlockRows - 1) /
                kCompressionBlockRows);
  }
  bytes_raw->Add(out->raw_bytes());
  bytes_comp->Add(out->compressed_bytes());
  return out;
}

size_t CompressedColumn::raw_bytes() const {
  if (i64_ != nullptr) return i64_->raw_bytes();
  if (str_ != nullptr) return str_->raw_bytes();
  return 0;
}

size_t CompressedColumn::compressed_bytes() const {
  if (i64_ != nullptr) return i64_->compressed_bytes();
  if (str_ != nullptr) return str_->compressed_bytes();
  return 0;
}

Status CompressedColumn::Validate(const ColumnVector& col) const {
  if (i64_ != nullptr) {
    if (col.type() != DataType::kInt64) {
      return Status::Internal("compressed column: int64 rep over non-int64");
    }
    return i64_->Validate(&col.int64_data());
  }
  if (str_ != nullptr) {
    if (col.type() != DataType::kString) {
      return Status::Internal("compressed column: dict rep over non-string");
    }
    return str_->Validate(&col.string_data());
  }
  return Status::Internal("compressed column: no representation");
}

}  // namespace exploredb
