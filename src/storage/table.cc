#include "storage/table.h"

#include <sstream>

namespace exploredb {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Result<const ColumnVector*> Table::ColumnByName(
    const std::string& name) const {
  EXPLOREDB_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  // Validate first so a failed append leaves all columns equal length.
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != columns_[i].type()) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.field(i).name + "': got " +
          DataTypeName(row[i].type()) + ", want " +
          DataTypeName(columns_[i].type()));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = columns_[i].Append(row[i]);
    DCHECK_OK(st);  // Cannot fail: arity and types validated above.
  }
  return Status::OK();
}

Table Table::Take(const std::vector<uint32_t>& positions) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Gather(positions);
  }
  return out;
}

Table Table::Project(const std::vector<size_t>& indices) const {
  Table out(schema_.Select(indices));
  for (size_t i = 0; i < indices.size(); ++i) {
    out.columns_[i] = columns_[indices[i]];
  }
  return out;
}

void Table::Reserve(size_t n) {
  for (auto& col : columns_) col.Reserve(n);
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    if (c) os << " | ";
    os << schema_.field(c).name;
  }
  os << "\n";
  size_t n = std::min(max_rows, num_rows());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (n < num_rows()) {
    os << "... (" << num_rows() - n << " more rows)\n";
  }
  return os.str();
}

}  // namespace exploredb
