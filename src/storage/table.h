#ifndef EXPLOREDB_STORAGE_TABLE_H_
#define EXPLOREDB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace exploredb {

/// In-memory columnar table: the storage substrate shared by every subsystem.
/// Plays the role MonetDB plays for the cracking papers and the warehouse
/// tables play for the AQP papers — a contiguous, typed, scan-friendly store.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return &columns_[i]; }

  /// Column by name, or NotFound.
  Result<const ColumnVector*> ColumnByName(const std::string& name) const;

  /// Appends one row; `row` must match the schema's arity and types.
  Status AppendRow(const std::vector<Value>& row);

  /// Dynamically typed cell read.
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// New table with only the rows at `positions` (in order).
  Table Take(const std::vector<uint32_t>& positions) const;

  /// New table with only the columns at `indices` (in order).
  Table Project(const std::vector<size_t>& indices) const;

  void Reserve(size_t n);

  /// Renders up to `max_rows` rows as an aligned ASCII table (for examples).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_TABLE_H_
