#ifndef EXPLOREDB_STORAGE_CSV_H_
#define EXPLOREDB_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace exploredb {

/// Options for the CSV codec. Deliberately minimal: the adaptive-loading
/// experiments need a well-defined flat-file format, not a full dialect
/// implementation (no quoting/escaping, as in the NoDB prototypes).
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Parses `path` into a Table with the given schema. Fails with ParseError on
/// the first malformed cell (error message carries the 1-based line number).
Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvOptions& options = {});

/// Writes `table` to `path` (header row iff options.has_header).
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_CSV_H_
