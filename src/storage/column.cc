#include "storage/column.h"

#include <unordered_map>

namespace exploredb {

DictEncoded DictEncode(const std::vector<std::string>& data) {
  DictEncoded dict;
  dict.codes.reserve(data.size());
  std::unordered_map<std::string, uint32_t> ids;
  for (const std::string& s : data) {
    auto [it, inserted] =
        ids.emplace(s, static_cast<uint32_t>(dict.values.size()));
    if (inserted) dict.values.push_back(s);
    dict.codes.push_back(it->second);
  }
  return dict;
}

size_t ColumnVector::size() const {
  switch (type_) {
    case DataType::kInt64:
      return int64_data_.size();
    case DataType::kDouble:
      return double_data_.size();
    case DataType::kString:
      return string_data_.size();
  }
  return 0;
}

Status ColumnVector::Append(const Value& v) {
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("appending ") + DataTypeName(v.type()) + " to " +
        DataTypeName(type_) + " column");
  }
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(v.int64());
      break;
    case DataType::kDouble:
      double_data_.push_back(v.dbl());
      break;
    case DataType::kString:
      string_data_.push_back(v.str());
      break;
  }
  return Status::OK();
}

Value ColumnVector::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(int64_data_[row]);
    case DataType::kDouble:
      return Value(double_data_[row]);
    case DataType::kString:
      return Value(string_data_[row]);
  }
  return Value();
}

double ColumnVector::GetDouble(size_t row) const {
  if (type_ == DataType::kInt64) {
    return static_cast<double>(int64_data_[row]);
  }
  return double_data_[row];
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      int64_data_.reserve(n);
      break;
    case DataType::kDouble:
      double_data_.reserve(n);
      break;
    case DataType::kString:
      string_data_.reserve(n);
      break;
  }
}

ColumnVector ColumnVector::Gather(
    const std::vector<uint32_t>& positions) const {
  ColumnVector out(type_);
  out.Reserve(positions.size());
  switch (type_) {
    case DataType::kInt64:
      for (uint32_t p : positions) out.int64_data_.push_back(int64_data_[p]);
      break;
    case DataType::kDouble:
      for (uint32_t p : positions) out.double_data_.push_back(double_data_[p]);
      break;
    case DataType::kString:
      for (uint32_t p : positions) {
        out.string_data_.push_back(string_data_[p]);
      }
      break;
  }
  return out;
}

}  // namespace exploredb
