#include "storage/csv.h"

#include <fstream>

#include "common/strings.h"

namespace exploredb {

Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  Table table(schema);
  std::string line;
  size_t line_no = 0;
  if (options.has_header) {
    std::getline(in, line);
    ++line_no;
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitFields(line, options.delimiter);
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(
          path + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(schema.num_fields()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      ColumnVector* col = table.mutable_column(c);
      switch (schema.field(c).type) {
        case DataType::kInt64: {
          auto v = ParseInt64(fields[c]);
          if (!v.ok()) {
            return Status::ParseError(path + ":" + std::to_string(line_no) +
                                      ": " + v.status().message());
          }
          col->AppendInt64(v.ValueOrDie());
          break;
        }
        case DataType::kDouble: {
          auto v = ParseDouble(fields[c]);
          if (!v.ok()) {
            return Status::ParseError(path + ":" + std::to_string(line_no) +
                                      ": " + v.status().message());
          }
          col->AppendDouble(v.ValueOrDie());
          break;
        }
        case DataType::kString:
          col->AppendString(std::string(fields[c]));
          break;
      }
    }
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c) out << options.delimiter;
      out << schema.field(c).name;
    }
    out << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << options.delimiter;
      out << table.GetValue(r, c).ToString();
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace exploredb
