#include "storage/zone_map.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <type_traits>

#include "storage/compression/compressed_column.h"

namespace exploredb {

namespace {

/// Can any value v with mn <= v <= mx satisfy `v op k`?
template <typename T>
bool BoundsMayMatch(T mn, T mx, CompareOp op, T k) {
  switch (op) {
    case CompareOp::kLt:
      return mn < k;
    case CompareOp::kLe:
      return mn <= k;
    case CompareOp::kGt:
      return mx > k;
    case CompareOp::kGe:
      return mx >= k;
    case CompareOp::kEq:
      return mn <= k && k <= mx;
    case CompareOp::kNe:
      return !(mn == k && mx == k);
  }
  return true;
}

template <typename T>
void BuildZones(const std::vector<T>& data, size_t zone_rows,
                std::vector<T>* mins, std::vector<T>* maxes) {
  const size_t n = data.size();
  const size_t zones = (n + zone_rows - 1) / zone_rows;
  mins->reserve(zones);
  maxes->reserve(zones);
  for (size_t z = 0; z < zones; ++z) {
    const size_t begin = z * zone_rows;
    const size_t end = std::min(n, begin + zone_rows);
    T mn = data[begin];
    T mx = data[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      mn = std::min(mn, data[i]);
      mx = std::max(mx, data[i]);
    }
    mins->push_back(mn);
    maxes->push_back(mx);
  }
}

/// Kernel-dispatched variant of BuildZones. Validate() deliberately keeps
/// the std::min/std::max loop above as an independent oracle; the two agree
/// under BoundsEqual because the kernels preserve NaN-skip/NaN-seed
/// semantics and == ignores the sign of zero.
template <typename T, typename MinMaxFn>
void BuildZonesDispatched(const std::vector<T>& data, size_t zone_rows,
                          MinMaxFn minmax, std::vector<T>* mins,
                          std::vector<T>* maxes) {
  const size_t n = data.size();
  const size_t zones = (n + zone_rows - 1) / zone_rows;
  mins->reserve(zones);
  maxes->reserve(zones);
  for (size_t z = 0; z < zones; ++z) {
    const size_t begin = z * zone_rows;
    const size_t end = std::min(n, begin + zone_rows);
    T mn;
    T mx;
    minmax(data.data() + begin, end - begin, &mn, &mx);
    mins->push_back(mn);
    maxes->push_back(mx);
  }
}

}  // namespace

ZoneMap ZoneMap::Build(const ColumnVector& col, size_t zone_rows) {
  ZoneMap zm;
  zm.type_ = col.type();
  zm.zone_rows_ = std::max<size_t>(1, zone_rows);
  zm.num_rows_ = col.size();
  const simd::KernelTable& kt = simd::ActiveKernels();
  switch (col.type()) {
    case DataType::kInt64:
      BuildZonesDispatched(col.int64_data(), zm.zone_rows_, kt.minmax_i64,
                           &zm.min_i64_, &zm.max_i64_);
      break;
    case DataType::kDouble:
      BuildZonesDispatched(col.double_data(), zm.zone_rows_, kt.minmax_f64,
                           &zm.min_dbl_, &zm.max_dbl_);
      break;
    case DataType::kString:
      break;  // no synopsis: MayMatch stays conservative (always true)
  }
  return zm;
}

size_t ZoneMap::num_zones() const {
  return type_ == DataType::kInt64 ? min_i64_.size() : min_dbl_.size();
}

bool ZoneMap::MayMatch(const Condition& c, uint32_t begin, uint32_t end) const {
  if (begin >= end) return true;
  if (c.constant.is_string()) return true;
  const size_t zones = num_zones();
  if (zones == 0) return true;
  size_t z0 = begin / zone_rows_;
  size_t z1 = std::min(zones - 1, static_cast<size_t>(end - 1) / zone_rows_);
  for (size_t z = z0; z <= z1; ++z) {
    switch (type_) {
      case DataType::kInt64:
        if (c.constant.is_int64()) {
          // Exact integer bounds test — matches the int64 comparison the
          // scan kernel performs.
          if (BoundsMayMatch(min_i64_[z], max_i64_[z], c.op,
                             c.constant.int64())) {
            return true;
          }
        } else {
          // The kernel widens int64 cells to double for double constants;
          // the cast is monotone, so casting the bounds is sound.
          if (BoundsMayMatch(static_cast<double>(min_i64_[z]),
                             static_cast<double>(max_i64_[z]), c.op,
                             c.constant.AsDouble())) {
            return true;
          }
        }
        break;
      case DataType::kDouble:
        // NaN cells defeat min/max bounds (and always satisfy !=), so stay
        // conservative whenever the bounds are contaminated or the op is kNe.
        if (c.op == CompareOp::kNe || std::isnan(min_dbl_[z]) ||
            std::isnan(max_dbl_[z])) {
          return true;
        }
        if (BoundsMayMatch(min_dbl_[z], max_dbl_[z], c.op,
                           c.constant.AsDouble())) {
          return true;
        }
        break;
      case DataType::kString:
        return true;
    }
  }
  return false;
}

namespace {

/// Equality that treats two NaNs as equal (double zones keep NaN bounds).
template <typename T>
bool BoundsEqual(T a, T b) {
  if constexpr (std::is_floating_point_v<T>) {
    if (std::isnan(a) && std::isnan(b)) return true;
  }
  return a == b;
}

template <typename T>
Status ValidateZones(const std::vector<T>& data, size_t zone_rows,
                     const std::vector<T>& mins, const std::vector<T>& maxes) {
  std::vector<T> want_min;
  std::vector<T> want_max;
  BuildZones(data, zone_rows, &want_min, &want_max);
  for (size_t z = 0; z < mins.size(); ++z) {
    if (!BoundsEqual(mins[z], want_min[z]) ||
        !BoundsEqual(maxes[z], want_max[z])) {
      return Status::Internal("zone map: zone " + std::to_string(z) +
                              " bounds disagree with the column");
    }
  }
  return Status::OK();
}

}  // namespace

Status ZoneMap::Validate(const ColumnVector* col) const {
  if (zone_rows_ == 0) return Status::Internal("zone map: zero zone width");
  if (type_ == DataType::kString) {
    return Status::Internal("zone map: built over a string column");
  }
  const size_t zones = num_zones();
  const size_t want_zones = (num_rows_ + zone_rows_ - 1) / zone_rows_;
  if (zones != want_zones) {
    return Status::Internal("zone map: " + std::to_string(zones) +
                            " zones do not cover " +
                            std::to_string(num_rows_) + " rows (expected " +
                            std::to_string(want_zones) + ")");
  }
  // Min/max arrays of the active type are parallel; the other type's empty.
  const bool is_int = type_ == DataType::kInt64;
  const size_t active_min = is_int ? min_i64_.size() : min_dbl_.size();
  const size_t active_max = is_int ? max_i64_.size() : max_dbl_.size();
  const size_t inactive =
      is_int ? min_dbl_.size() + max_dbl_.size()
             : min_i64_.size() + max_i64_.size();
  if (active_min != zones || active_max != zones || inactive != 0) {
    return Status::Internal("zone map: bound arrays inconsistent with type");
  }
  for (size_t z = 0; z < zones; ++z) {
    if (is_int) {
      if (min_i64_[z] > max_i64_[z]) {
        return Status::Internal("zone map: zone " + std::to_string(z) +
                                " has min > max");
      }
    } else if (!(std::isnan(min_dbl_[z]) || std::isnan(max_dbl_[z])) &&
               min_dbl_[z] > max_dbl_[z]) {
      return Status::Internal("zone map: zone " + std::to_string(z) +
                              " has min > max");
    }
  }
  if (col != nullptr) {
    if (col->type() != type_ || col->size() != num_rows_) {
      return Status::Internal("zone map: column type/size changed since build");
    }
    if (is_int) {
      return ValidateZones(col->int64_data(), zone_rows_, min_i64_, max_i64_);
    }
    return ValidateZones(col->double_data(), zone_rows_, min_dbl_, max_dbl_);
  }
  return Status::OK();
}

double UniformSelectivityFraction(double mn, double mx, CompareOp op,
                                  double k) {
  if (std::isnan(mn) || std::isnan(mx) || std::isnan(k)) return 1.0;
  const double width = mx - mn;
  // P(v < k) and P(v <= k); the two differ only by the point mass at k,
  // which a capacity hint can ignore except in the degenerate zone.
  const auto frac_lt = [&](bool inclusive) {
    if (k < mn || (k == mn && !inclusive)) return 0.0;
    if (k > mx || (k == mx && inclusive)) return 1.0;
    return width > 0 ? (k - mn) / width : 0.5;
  };
  const auto frac_eq = [&] {
    if (k < mn || k > mx) return 0.0;
    return width > 0 ? 1.0 / (width + 1) : 1.0;
  };
  switch (op) {
    case CompareOp::kLt:
      return frac_lt(false);
    case CompareOp::kLe:
      return frac_lt(true);
    case CompareOp::kGt:
      return 1.0 - frac_lt(true);
    case CompareOp::kGe:
      return 1.0 - frac_lt(false);
    case CompareOp::kEq:
      return frac_eq();
    case CompareOp::kNe:
      return 1.0 - frac_eq();
  }
  return 1.0;
}

double ZoneMap::EstimateSelectivity(const Condition& c) const {
  if (type_ == DataType::kString || c.constant.is_string() || num_rows_ == 0) {
    return 1.0;
  }
  const size_t zones = num_zones();
  if (zones == 0) return 1.0;
  const double k = c.constant.AsDouble();
  double expected = 0;  // expected matching rows across all zones
  for (size_t z = 0; z < zones; ++z) {
    const size_t begin = z * zone_rows_;
    const size_t rows = std::min(num_rows_, begin + zone_rows_) - begin;
    const double mn = type_ == DataType::kInt64
                          ? static_cast<double>(min_i64_[z])
                          : min_dbl_[z];
    const double mx = type_ == DataType::kInt64
                          ? static_cast<double>(max_i64_[z])
                          : max_dbl_[z];
    expected +=
        UniformSelectivityFraction(mn, mx, c.op, k) * static_cast<double>(rows);
  }
  return std::clamp(expected / static_cast<double>(num_rows_), 0.0, 1.0);
}

double ZoneMap::EstimateSelectivity(const Condition& c,
                                    const CompressedInt64Column* comp) const {
  if (comp != nullptr && type_ == DataType::kInt64 && c.constant.is_int64()) {
    return comp->EstimateSelectivity(c.op, c.constant.int64());
  }
  return EstimateSelectivity(c);
}

std::optional<std::pair<int64_t, int64_t>> ZoneMap::Int64Range() const {
  if (type_ != DataType::kInt64 || min_i64_.empty()) return std::nullopt;
  int64_t mn = min_i64_[0];
  int64_t mx = max_i64_[0];
  for (size_t z = 1; z < min_i64_.size(); ++z) {
    mn = std::min(mn, min_i64_[z]);
    mx = std::max(mx, max_i64_[z]);
  }
  return std::make_pair(mn, mx);
}

}  // namespace exploredb
