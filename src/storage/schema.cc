#include "storage/schema.h"

namespace exploredb {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(fields_[i]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace exploredb
