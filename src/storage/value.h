#ifndef EXPLOREDB_STORAGE_VALUE_H_
#define EXPLOREDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace exploredb {

/// Physical types supported by the column store. Exploration workloads in the
/// surveyed systems are dominated by numeric range predicates and categorical
/// group-bys, which these three types cover.
enum class DataType { kInt64, kDouble, kString };

/// Returns "int64" / "double" / "string".
const char* DataTypeName(DataType type);

/// A dynamically typed scalar cell. Used at API boundaries (row appends,
/// query constants, result rendering); inner loops operate on the typed
/// column arrays directly.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}          // NOLINT(google-explicit-constructor)
  Value(double v) : repr_(v) {}           // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  DataType type() const;

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  /// Numeric view: int64 widened to double. Must not be called on strings.
  double AsDouble() const;

  std::string ToString() const;

  /// Same-type comparisons; comparing across types orders by type tag so that
  /// Values can live in ordered containers.
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

 private:
  std::variant<int64_t, double, std::string> repr_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_VALUE_H_
