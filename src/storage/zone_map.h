#ifndef EXPLOREDB_STORAGE_ZONE_MAP_H_
#define EXPLOREDB_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/predicate.h"

namespace exploredb {

class CompressedInt64Column;

/// Fraction of a uniform [mn, mx] population satisfying `v op k` — the
/// selectivity model shared by the zone map and the compressed-block
/// synopses (storage/compression).
double UniformSelectivityFraction(double mn, double mx, CompareOp op,
                                  double k);

/// Per-zone min/max synopsis over one numeric column — the classic "zone
/// map" (a.k.a. small materialized aggregate). Zones are fixed-width row
/// ranges, so any morsel [begin, end) maps onto the zones it overlaps and a
/// scan can skip the whole morsel when some conjunct provably matches no row
/// of any overlapping zone. Built in one O(n) pass, lazily, and cached on
/// TableEntry: the synopsis costs a single scan and then prunes every later
/// scan of the column.
class ZoneMap {
 public:
  /// Default zone width. Finer than the default morsel (64K rows) so pruning
  /// keeps resolution when callers shrink the morsel size.
  static constexpr size_t kDefaultZoneRows = 8192;

  /// Builds the synopsis; `col` must be int64 or double.
  static ZoneMap Build(const ColumnVector& col,
                       size_t zone_rows = kDefaultZoneRows);

  size_t zone_rows() const { return zone_rows_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_zones() const;
  DataType type() const { return type_; }

  /// True unless provably *no* row in [begin, end) satisfies `c` (whose
  /// column must be the mapped one). Conservative: a string constant — or an
  /// empty row range — always "may match".
  bool MayMatch(const Condition& c, uint32_t begin, uint32_t end) const;

  /// Column-wide [min, max] of an int64 column (nullopt when the column is
  /// empty or not int64). O(zones); feeds the dense group-by fast path.
  std::optional<std::pair<int64_t, int64_t>> Int64Range() const;

  /// Estimated fraction of rows satisfying `c`, from the per-zone bounds
  /// under a uniform-within-zone model. A capacity hint only (the executor
  /// pre-sizes selection vectors with it), never a correctness input:
  /// clamped to [0, 1] and 1.0 whenever the map cannot say (string columns
  /// or constants, NaN-contaminated zones). O(zones).
  double EstimateSelectivity(const Condition& c) const;

  /// Selectivity estimate that consults the column's compressed
  /// representation when one exists: EXACT for RLE blocks (run headers give
  /// true match counts) and per-block uniform otherwise — strictly at least
  /// as good as the zone-only estimate on clustered data. Falls back to
  /// EstimateSelectivity(c) when `comp` is null or the condition is not an
  /// int64 comparison.
  double EstimateSelectivity(const Condition& c,
                             const CompressedInt64Column* comp) const;

  /// Well-formedness: the zones exactly cover [0, num_rows) (zone count is
  /// ceil(num_rows / zone_rows)) and min <= max in every zone. When `col` is
  /// given, additionally recomputes each zone's bounds from the column and
  /// requires an exact match — a stale or corrupt synopsis would silently
  /// prune live rows. O(zones), O(rows) with `col`.
  Status Validate(const ColumnVector* col = nullptr) const;

 private:
  DataType type_ = DataType::kInt64;
  size_t zone_rows_ = kDefaultZoneRows;
  size_t num_rows_ = 0;
  // Parallel per-zone bounds; only the pair matching `type_` is populated.
  std::vector<int64_t> min_i64_;
  std::vector<int64_t> max_i64_;
  std::vector<double> min_dbl_;
  std::vector<double> max_dbl_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_ZONE_MAP_H_
