#include "storage/value.h"

namespace exploredb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  return dbl();
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return std::to_string(dbl());
  return str();
}

}  // namespace exploredb
