#ifndef EXPLOREDB_STORAGE_SCHEMA_H_
#define EXPLOREDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace exploredb {

/// A named, typed column slot.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// Ordered collection of fields describing a Table's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Schema containing only `indices`, in the given order.
  Schema Select(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const = default;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_STORAGE_SCHEMA_H_
