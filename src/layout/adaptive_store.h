#ifndef EXPLOREDB_LAYOUT_ADAPTIVE_STORE_H_
#define EXPLOREDB_LAYOUT_ADAPTIVE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "layout/cost_model.h"
#include "layout/layouts.h"

namespace exploredb {

/// Decision trace entry: one adaptation window.
struct AdaptationEvent {
  LayoutKind chosen;
  double predicted_cost;
  bool reorganized;
};

/// H2O-style adaptive store [Alagiannis/Idreos/Ailamaki, SIGMOD'14]: serves
/// the workload from whichever physical layout the recent operation mix
/// favors. Every `window` operations it re-evaluates the cost model over the
/// observed profile and reorganizes when the predicted savings exceed the
/// reorganization cost (amortized over a window).
class AdaptiveStore {
 public:
  /// Starts in column layout (the exploration-friendly default).
  /// `amortization_windows` is the number of future windows the current
  /// workload mix is assumed to persist for when weighing a reorganization
  /// (H2O's "the workload you see is the workload you get" assumption).
  AdaptiveStore(std::vector<std::vector<double>> columns, size_t window,
                size_t amortization_windows = 20);

  /// Executes `op` on the active layout, recording it in the profile.
  /// Returns the op's checksum.
  double Execute(const AccessOp& op);

  LayoutKind active_layout() const { return active_->kind(); }
  const std::vector<AdaptationEvent>& history() const { return history_; }
  size_t reorganizations() const { return reorganizations_; }

  /// The store's cost model (exposed so experiments can compare predictions
  /// with static layouts).
  const LayoutCostModel& cost_model() const { return model_; }

  /// Well-formedness after any number of reorganizations: the active layout
  /// has the master matrix's shape and contents (every column scan agrees
  /// with a sum over the columnar source of truth), the workload profile
  /// matches the column count, and the adaptation bookkeeping is consistent.
  /// O(rows x cols); read-only (does not touch the profile).
  Status Validate() const;

 private:
  void MaybeAdapt();
  std::vector<bool> HotScanColumns() const;

  std::vector<std::vector<double>> master_;  // source of truth, columnar
  LayoutCostModel model_;
  size_t window_;
  size_t amortization_windows_;
  size_t ops_in_window_ = 0;
  WorkloadProfile profile_;
  std::unique_ptr<MatrixStore> active_;
  std::vector<bool> active_scan_columns_;
  // Hysteresis: a switch fires only when two consecutive windows agree on
  // the same better layout, which prevents thrashing on noisy mixes.
  LayoutKind pending_kind_ = LayoutKind::kColumn;
  bool has_pending_ = false;
  std::vector<AdaptationEvent> history_;
  size_t reorganizations_ = 0;
};

}  // namespace exploredb

#endif  // EXPLOREDB_LAYOUT_ADAPTIVE_STORE_H_
