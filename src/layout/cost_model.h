#ifndef EXPLOREDB_LAYOUT_COST_MODEL_H_
#define EXPLOREDB_LAYOUT_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "layout/layouts.h"

namespace exploredb {

/// Observed mix of access operations over a window.
struct WorkloadProfile {
  uint64_t row_fetches = 0;
  std::vector<uint64_t> column_scans;  ///< per-column scan counts

  uint64_t TotalScans() const;
  uint64_t TotalOps() const { return row_fetches + TotalScans(); }
  void Clear();
};

/// Analytic cache-line cost model for the three layouts. Costs are in
/// cache-line touches (64-byte lines over 8-byte doubles); relative ordering
/// is what matters — it drives the adaptive store's layout decisions, and
/// E14 validates it against measured time.
class LayoutCostModel {
 public:
  LayoutCostModel(size_t num_rows, size_t num_cols)
      : num_rows_(num_rows), num_cols_(num_cols) {}

  /// Predicted line touches of one row fetch / one column scan.
  double RowFetchCost(LayoutKind kind,
                      const std::vector<bool>& scan_columns) const;
  double ColumnScanCost(LayoutKind kind, size_t col,
                        const std::vector<bool>& scan_columns) const;

  /// Predicted total cost of `profile` under `kind` (hybrid uses
  /// `scan_columns` as its columnar set).
  double WorkloadCost(LayoutKind kind, const WorkloadProfile& profile,
                      const std::vector<bool>& scan_columns) const;

  /// One-time cost of rewriting the whole matrix into a new layout.
  double ReorganizationCost() const;

 private:
  static constexpr double kDoublesPerLine = 8.0;  // 64B line / 8B double

  size_t num_rows_;
  size_t num_cols_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_LAYOUT_COST_MODEL_H_
