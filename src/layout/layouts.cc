#include "layout/layouts.h"

namespace exploredb {

const char* LayoutKindName(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kRow:
      return "row";
    case LayoutKind::kColumn:
      return "column";
    case LayoutKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

namespace {

class RowStore final : public MatrixStore {
 public:
  explicit RowStore(const std::vector<std::vector<double>>& columns)
      : cols_(columns.size()), rows_(columns.empty() ? 0 : columns[0].size()) {
    data_.resize(rows_ * cols_);
    for (size_t c = 0; c < cols_; ++c) {
      for (size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = columns[c][r];
    }
  }

  LayoutKind kind() const override { return LayoutKind::kRow; }
  size_t num_rows() const override { return rows_; }
  size_t num_cols() const override { return cols_; }

  double FetchRow(size_t row) const override {
    double s = 0.0;
    const double* p = &data_[row * cols_];
    for (size_t c = 0; c < cols_; ++c) s += p[c];
    return s;
  }

  double ScanColumn(size_t col) const override {
    double s = 0.0;
    for (size_t r = 0; r < rows_; ++r) s += data_[r * cols_ + col];
    return s;
  }

 private:
  size_t cols_;
  size_t rows_;
  std::vector<double> data_;
};

class ColumnStore final : public MatrixStore {
 public:
  explicit ColumnStore(const std::vector<std::vector<double>>& columns)
      : cols_(columns) {}

  LayoutKind kind() const override { return LayoutKind::kColumn; }
  size_t num_rows() const override {
    return cols_.empty() ? 0 : cols_[0].size();
  }
  size_t num_cols() const override { return cols_.size(); }

  double FetchRow(size_t row) const override {
    double s = 0.0;
    for (const auto& col : cols_) s += col[row];
    return s;
  }

  double ScanColumn(size_t col) const override {
    double s = 0.0;
    for (double v : cols_[col]) s += v;
    return s;
  }

 private:
  std::vector<std::vector<double>> cols_;
};

class HybridStore final : public MatrixStore {
 public:
  HybridStore(const std::vector<std::vector<double>>& columns,
              const std::vector<bool>& scan_columns)
      : rows_(columns.empty() ? 0 : columns[0].size()),
        total_cols_(columns.size()) {
    // slot_[c]: (true, i) -> columnar_[i];  (false, offset) -> row group.
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c < scan_columns.size() && scan_columns[c]) {
        slot_.push_back({true, columnar_.size()});
        columnar_.push_back(columns[c]);
      } else {
        slot_.push_back({false, group_width_});
        ++group_width_;
      }
    }
    group_.resize(rows_ * group_width_);
    for (size_t c = 0; c < columns.size(); ++c) {
      if (slot_[c].first) continue;
      size_t off = slot_[c].second;
      for (size_t r = 0; r < rows_; ++r) {
        group_[r * group_width_ + off] = columns[c][r];
      }
    }
  }

  LayoutKind kind() const override { return LayoutKind::kHybrid; }
  size_t num_rows() const override { return rows_; }
  size_t num_cols() const override { return total_cols_; }

  double FetchRow(size_t row) const override {
    double s = 0.0;
    const double* p = group_width_ ? &group_[row * group_width_] : nullptr;
    for (size_t i = 0; i < group_width_; ++i) s += p[i];
    for (const auto& col : columnar_) s += col[row];
    return s;
  }

  double ScanColumn(size_t col) const override {
    double s = 0.0;
    if (slot_[col].first) {
      for (double v : columnar_[slot_[col].second]) s += v;
    } else {
      size_t off = slot_[col].second;
      for (size_t r = 0; r < rows_; ++r) s += group_[r * group_width_ + off];
    }
    return s;
  }

 private:
  size_t rows_;
  size_t total_cols_;
  size_t group_width_ = 0;
  std::vector<std::pair<bool, size_t>> slot_;
  std::vector<std::vector<double>> columnar_;
  std::vector<double> group_;
};

}  // namespace

std::unique_ptr<MatrixStore> MakeRowStore(
    const std::vector<std::vector<double>>& columns) {
  return std::make_unique<RowStore>(columns);
}

std::unique_ptr<MatrixStore> MakeColumnStore(
    const std::vector<std::vector<double>>& columns) {
  return std::make_unique<ColumnStore>(columns);
}

std::unique_ptr<MatrixStore> MakeHybridStore(
    const std::vector<std::vector<double>>& columns,
    const std::vector<bool>& scan_columns) {
  return std::make_unique<HybridStore>(columns, scan_columns);
}

}  // namespace exploredb
