#include "layout/adaptive_store.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace exploredb {

AdaptiveStore::AdaptiveStore(std::vector<std::vector<double>> columns,
                             size_t window, size_t amortization_windows)
    : master_(std::move(columns)),
      model_(master_.empty() ? 0 : master_[0].size(), master_.size()),
      window_(std::max<size_t>(window, 1)),
      amortization_windows_(std::max<size_t>(amortization_windows, 1)),
      active_(MakeColumnStore(master_)),
      active_scan_columns_(master_.size(), true) {
  profile_.column_scans.assign(master_.size(), 0);
}

double AdaptiveStore::Execute(const AccessOp& op) {
  if (op.kind == AccessOp::Kind::kRowFetch) {
    ++profile_.row_fetches;
  } else {
    ++profile_.column_scans[op.index];
  }
  double result = active_->Execute(op);
  if (++ops_in_window_ >= window_) MaybeAdapt();
  return result;
}

std::vector<bool> AdaptiveStore::HotScanColumns() const {
  // A column goes columnar when it is scanned more often than the average
  // column; everything else stays in the row group for cheap row fetches.
  std::vector<bool> hot(master_.size(), false);
  uint64_t total = profile_.TotalScans();
  if (total == 0) return hot;
  double avg = static_cast<double>(total) /
               static_cast<double>(master_.size());
  for (size_t c = 0; c < master_.size(); ++c) {
    hot[c] = static_cast<double>(profile_.column_scans[c]) >= avg;
  }
  return hot;
}

void AdaptiveStore::MaybeAdapt() {
  ops_in_window_ = 0;
  std::vector<bool> hybrid_cols = HotScanColumns();

  struct Candidate {
    LayoutKind kind;
    const std::vector<bool>* scan_cols;
  };
  std::vector<bool> all_columnar(master_.size(), true);
  const Candidate candidates[] = {
      {LayoutKind::kRow, &all_columnar},      // scan set unused for row
      {LayoutKind::kColumn, &all_columnar},
      {LayoutKind::kHybrid, &hybrid_cols},
  };

  double current_cost =
      model_.WorkloadCost(active_->kind(), profile_, active_scan_columns_);
  LayoutKind best_kind = active_->kind();
  const std::vector<bool>* best_cols = &active_scan_columns_;
  double best_cost = current_cost;
  for (const Candidate& cand : candidates) {
    double cost = model_.WorkloadCost(cand.kind, profile_, *cand.scan_cols);
    if (cost < best_cost) {
      best_cost = cost;
      best_kind = cand.kind;
      best_cols = cand.scan_cols;
    }
  }

  // Projected savings assuming the observed mix persists.
  double projected_savings = (current_cost - best_cost) *
                             static_cast<double>(amortization_windows_);
  bool layout_changed = best_kind != active_->kind();
  if (!layout_changed && best_kind == LayoutKind::kHybrid) {
    // Hybrid-to-hybrid regrouping: only when the hot set drifted
    // substantially (> 25% of columns), otherwise small workload noise
    // would trigger a full rewrite every window.
    size_t diff = 0;
    for (size_t c = 0; c < master_.size(); ++c) {
      diff += ((*best_cols)[c] != active_scan_columns_[c]);
    }
    layout_changed = diff * 4 > master_.size();
  }
  bool worth_it =
      layout_changed && projected_savings > model_.ReorganizationCost();
  // Hysteresis: only switch when the previous window reached the same
  // conclusion.
  bool should_switch =
      worth_it && has_pending_ && pending_kind_ == best_kind;
  has_pending_ = worth_it;
  pending_kind_ = best_kind;

  if (should_switch) {
    std::vector<bool> cols = *best_cols;
    switch (best_kind) {
      case LayoutKind::kRow:
        active_ = MakeRowStore(master_);
        break;
      case LayoutKind::kColumn:
        active_ = MakeColumnStore(master_);
        break;
      case LayoutKind::kHybrid:
        active_ = MakeHybridStore(master_, cols);
        break;
    }
    active_scan_columns_ = std::move(cols);
    ++reorganizations_;
  }
  history_.push_back({active_->kind(), best_cost, should_switch});
  profile_.Clear();
}

Status AdaptiveStore::Validate() const {
  const size_t cols = master_.size();
  const size_t rows = cols == 0 ? 0 : master_[0].size();
  for (size_t c = 1; c < cols; ++c) {
    if (master_[c].size() != rows) {
      return Status::Internal("adaptive store: master column " +
                              std::to_string(c) + " has " +
                              std::to_string(master_[c].size()) + " rows, " +
                              "column 0 has " + std::to_string(rows));
    }
  }
  if (active_ == nullptr) {
    return Status::Internal("adaptive store: no active layout");
  }
  if (active_->num_rows() != rows || active_->num_cols() != cols) {
    return Status::Internal("adaptive store: active layout is " +
                            std::to_string(active_->num_rows()) + "x" +
                            std::to_string(active_->num_cols()) +
                            ", master is " + std::to_string(rows) + "x" +
                            std::to_string(cols));
  }
  if (active_scan_columns_.size() != cols ||
      profile_.column_scans.size() != cols) {
    return Status::Internal(
        "adaptive store: per-column bookkeeping out of sync");
  }
  if (ops_in_window_ >= window_) {
    return Status::Internal("adaptive store: window overran adaptation point");
  }
  if (reorganizations_ > history_.size()) {
    return Status::Internal(
        "adaptive store: more reorganizations than adaptation windows");
  }
  // Content check: every column scanned through the active layout must agree
  // with the columnar source of truth. Layouts sum in different orders, so
  // allow relative FP slack.
  for (size_t c = 0; c < cols; ++c) {
    double want = 0.0;
    double scale = 1.0;  // condition number guard: |a+b| can be << |a|+|b|
    for (double v : master_[c]) {
      want += v;
      scale += std::abs(v);
    }
    double got = active_->ScanColumn(c);
    double tolerance = 1e-9 * scale;
    if (!(std::abs(got - want) <= tolerance)) {
      return Status::Internal("adaptive store: column " + std::to_string(c) +
                              " checksum " + std::to_string(got) +
                              " disagrees with master " +
                              std::to_string(want) +
                              " after reorganization");
    }
  }
  return Status::OK();
}

}  // namespace exploredb
