#include "layout/cost_model.h"

#include <algorithm>
#include <cmath>

namespace exploredb {

uint64_t WorkloadProfile::TotalScans() const {
  uint64_t total = 0;
  for (uint64_t c : column_scans) total += c;
  return total;
}

void WorkloadProfile::Clear() {
  row_fetches = 0;
  std::fill(column_scans.begin(), column_scans.end(), 0);
}

double LayoutCostModel::RowFetchCost(
    LayoutKind kind, const std::vector<bool>& scan_columns) const {
  const double m = static_cast<double>(num_cols_);
  switch (kind) {
    case LayoutKind::kRow:
      // Contiguous row: ceil(m / 8) lines.
      return std::ceil(m / kDoublesPerLine);
    case LayoutKind::kColumn:
      // One scattered access per column.
      return m;
    case LayoutKind::kHybrid: {
      double columnar = 0;
      for (bool s : scan_columns) columnar += s;
      double grouped = m - columnar;
      return std::ceil(std::max(grouped, 0.0) / kDoublesPerLine) + columnar;
    }
  }
  return 0;
}

double LayoutCostModel::ColumnScanCost(
    LayoutKind kind, size_t col, const std::vector<bool>& scan_columns) const {
  const double n = static_cast<double>(num_rows_);
  const double m = static_cast<double>(num_cols_);
  switch (kind) {
    case LayoutKind::kRow:
      // One value per row; a new line every max(1, 8/m) rows.
      return n / std::max(1.0, kDoublesPerLine / m);
    case LayoutKind::kColumn:
      return std::ceil(n / kDoublesPerLine);
    case LayoutKind::kHybrid: {
      bool columnar = col < scan_columns.size() && scan_columns[col];
      if (columnar) return std::ceil(n / kDoublesPerLine);
      double grouped = 0;
      for (bool s : scan_columns) grouped += !s;
      return n / std::max(1.0, kDoublesPerLine / std::max(grouped, 1.0));
    }
  }
  return 0;
}

double LayoutCostModel::WorkloadCost(
    LayoutKind kind, const WorkloadProfile& profile,
    const std::vector<bool>& scan_columns) const {
  double total = static_cast<double>(profile.row_fetches) *
                 RowFetchCost(kind, scan_columns);
  for (size_t c = 0; c < profile.column_scans.size(); ++c) {
    total += static_cast<double>(profile.column_scans[c]) *
             ColumnScanCost(kind, c, scan_columns);
  }
  return total;
}

double LayoutCostModel::ReorganizationCost() const {
  // Read + write of the full matrix.
  return 2.0 * std::ceil(static_cast<double>(num_rows_ * num_cols_) /
                         kDoublesPerLine);
}

}  // namespace exploredb
