#ifndef EXPLOREDB_LAYOUT_LAYOUTS_H_
#define EXPLOREDB_LAYOUT_LAYOUTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"

namespace exploredb {

/// The two access patterns whose tension drives storage-layout choice:
/// OLTP-style full-row fetches vs. OLAP-style single-column scans.
struct AccessOp {
  enum class Kind { kRowFetch, kColumnScan };
  Kind kind = Kind::kColumnScan;
  size_t index = 0;  ///< row id for kRowFetch, column id for kColumnScan
};

/// Physical layout of a numeric matrix. There is no universally best layout
/// — the premise of adaptive storage (H2O [Alagiannis et al., SIGMOD'14],
/// OctopusDB [Dittrich & Jindal, CIDR'11]).
enum class LayoutKind { kRow, kColumn, kHybrid };

const char* LayoutKindName(LayoutKind kind);

/// A physical store over an n x m double matrix supporting both access ops.
/// Implementations return a checksum so the work cannot be optimized away in
/// benchmarks.
class MatrixStore {
 public:
  virtual ~MatrixStore() = default;

  virtual LayoutKind kind() const = 0;
  virtual size_t num_rows() const = 0;
  virtual size_t num_cols() const = 0;

  /// Sum of the row's values.
  virtual double FetchRow(size_t row) const = 0;
  /// Sum of the column's values.
  virtual double ScanColumn(size_t col) const = 0;

  double Execute(const AccessOp& op) const {
    return op.kind == AccessOp::Kind::kRowFetch ? FetchRow(op.index)
                                                : ScanColumn(op.index);
  }
};

/// Row-major (N-ary / NSM) layout: rows contiguous — fast row fetch, strided
/// column scan.
std::unique_ptr<MatrixStore> MakeRowStore(
    const std::vector<std::vector<double>>& columns);

/// Column-major (DSM) layout: columns contiguous — fast scans, scattered
/// row reconstruction.
std::unique_ptr<MatrixStore> MakeColumnStore(
    const std::vector<std::vector<double>>& columns);

/// Hybrid (column-group / PAX-flavored) layout: columns in `scan_columns`
/// stored columnar, the remainder packed row-major.
std::unique_ptr<MatrixStore> MakeHybridStore(
    const std::vector<std::vector<double>>& columns,
    const std::vector<bool>& scan_columns);

}  // namespace exploredb

#endif  // EXPLOREDB_LAYOUT_LAYOUTS_H_
