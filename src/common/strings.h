#ifndef EXPLOREDB_COMMON_STRINGS_H_
#define EXPLOREDB_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace exploredb {

/// Splits `line` on `delim`, preserving empty fields.
std::vector<std::string_view> SplitFields(std::string_view line, char delim);

/// Strict integer / double parsing: the whole field must be consumed.
Result<int64_t> ParseInt64(std::string_view field);
Result<double> ParseDouble(std::string_view field);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Human-scale duration: "873ns", "42us", "1.7ms", "2.3s". Used by
/// ExecStats::Summary and the ExplainAnalyze report.
std::string FormatDurationNanos(int64_t nanos);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_STRINGS_H_
