#ifndef EXPLOREDB_COMMON_TRACE_H_
#define EXPLOREDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace exploredb {

/// Lightweight tracing: RAII TraceSpan objects record [start, duration)
/// intervals into per-thread ring buffers, exported as Chrome trace_event
/// JSON (load in about://tracing or https://ui.perfetto.dev).
///
/// Cost model:
///  - Tracing OFF (the default): a span is one relaxed bool test. No clock
///    reads, no allocations, no thread-local buffer creation. Spans that also
///    accumulate into an ExecStats field (`accum`) pay the two clock reads
///    the Stopwatch they replaced already paid — nothing more.
///  - Tracing ON: two clock reads plus a fixed-size struct copy into the
///    calling thread's ring buffer (no allocation after the ring exists).
///    Rings hold kRingCapacity events and overwrite the oldest on wrap.
///
/// Enablement is process-wide: the EXPLOREDB_TRACE=1 environment variable at
/// startup or Tracer::SetEnabled(true) at runtime. A single query can also
/// opt in via QueryOptions::trace (see ExecContext::tracing()), which is how
/// Session::ExplainAnalyze captures a per-phase/per-morsel breakdown without
/// turning tracing on globally.

/// One completed span. `name` is a truncated copy so events never point into
/// freed memory; spans are named with short static strings ("select",
/// "morsel"), so truncation is theoretical.
struct TraceEvent {
  static constexpr size_t kMaxName = 23;

  char name[kMaxName + 1] = {0};
  int64_t start_ns = 0;  ///< since Tracer's process epoch (steady clock)
  int64_t dur_ns = 0;
  uint32_t tid = 0;    ///< dense trace thread id (registration order)
  uint16_t depth = 0;  ///< span nesting depth on this thread at open
};

class Tracer {
 public:
  /// Per-thread ring capacity: at ~48 bytes/event this is ~400KB per
  /// traced thread, holding several thousand queries' worth of phase spans.
  static constexpr size_t kRingCapacity = 8192;

  /// True when process-wide tracing is on (EXPLOREDB_TRACE=1 at startup or
  /// SetEnabled). One relaxed load — safe on any hot path.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds since the process trace epoch (first use of the tracer).
  /// Callers use this to scope a Snapshot to "events since t0".
  static int64_t NowNs();

  /// All buffered events across threads, sorted by start time. Each ring is
  /// copied under its lock, so concurrent spans on other threads are safe;
  /// events recorded while the snapshot runs may or may not appear.
  static std::vector<TraceEvent> Snapshot();

  /// Events with start_ns >= t0 (see NowNs), sorted by start time.
  static std::vector<TraceEvent> SnapshotSince(int64_t t0);

  /// Drops all buffered events (rings stay allocated).
  static void Clear();

  /// Chrome trace_event JSON for `events` ("X" complete events, microsecond
  /// timestamps). The overload without arguments exports a full Snapshot().
  static std::string ChromeTraceJson(const std::vector<TraceEvent>& events);
  static std::string ChromeTraceJson();

  /// Writes ChromeTraceJson() to `path`.
  static Status WriteChromeTrace(const std::string& path);

 private:
  friend class TraceSpan;

  static void Record(const TraceEvent& event);

  static std::atomic<bool> enabled_;
};

/// RAII span. Construction samples the clock, destruction (or Stop())
/// computes the duration, optionally accumulates it into `*accum` (the
/// ExecStats phase-nanos fields — a span is a Stopwatch that can also
/// publish), and records a TraceEvent when `enabled` was true at open.
///
///   TraceSpan span("select", ctx.tracing(), &stats->select_nanos);
///
/// A span constructed with enabled=false and accum=nullptr does nothing at
/// all — no clock reads — so per-morsel spans can be left in hot loops.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, bool enabled = Tracer::enabled(),
                     int64_t* accum = nullptr);
  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now (idempotent): records the event / publishes the
  /// duration early, for code that must read the accumulated stats before
  /// scope exit.
  void Stop();

 private:
  const char* name_;
  int64_t* accum_;
  int64_t start_ns_ = 0;
  uint16_t depth_ = 0;
  bool armed_;    ///< still needs Stop() work
  bool record_;   ///< tracing was enabled at open: emit a TraceEvent
};

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_TRACE_H_
