#ifndef EXPLOREDB_COMMON_THREAD_POOL_H_
#define EXPLOREDB_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace exploredb {

/// A fixed-size worker pool for morsel-driven parallelism. One process-wide
/// instance (Global()) is shared by default; executors may also own private
/// pools (tests pin thread counts this way).
///
/// The design constraint is determinism: ParallelFor callers assign output
/// slots by chunk index, never by thread, so results are identical for any
/// worker count — including zero workers, where the caller runs everything
/// inline.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is valid: all work runs on the caller).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Fire-and-forget task (used by async/speculative machinery).
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// What a ParallelFor dispatch actually used, for ExecStats.
  struct ForStats {
    uint64_t chunks = 0;        ///< chunk indexes dispatched
    uint32_t threads_used = 1;  ///< distinct threads that ran >= 1 chunk
  };

  /// Runs body(chunk) for chunk in [0, count), distributing chunks over the
  /// workers via an atomic claim counter. The calling thread participates,
  /// so this makes progress (and cannot deadlock) even when every worker is
  /// busy — including when called from inside a pool task. Blocks until all
  /// chunks have finished.
  ForStats ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Process-wide shared pool, sized to the hardware; created on first use.
  static ThreadPool* Global();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  // NOLINT-exploredb(guarded-by): filled in the constructor before any
  // worker can observe the pool, never resized afterwards.
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_THREAD_POOL_H_
