#ifndef EXPLOREDB_COMMON_STATUS_H_
#define EXPLOREDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace exploredb {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kParseError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. ExploreDB does not throw exceptions
/// across library boundaries; fallible functions return Status (or Result<T>
/// when they also produce a value), following the Arrow/RocksDB idiom.
///
/// Statuses are cheap to copy in the success case (no allocation) and carry a
/// code plus a free-form message otherwise.
///
/// The class is [[nodiscard]]: every function returning a Status by value is
/// a function whose failure the caller must handle. Callers either propagate
/// (EXPLOREDB_RETURN_NOT_OK), assert success (CHECK_OK / DCHECK_OK, see
/// common/check.h), or — rarely — document that the error is intentionally
/// dropped by calling IgnoreError(). Bare discards do not compile
/// (-Werror=unused-result), and exploredb-lint rule R1 flags them too.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK (success) status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly consumes the status without acting on it. The sanctioned way
  /// to drop an error on the floor — grep-able, and it documents intent where
  /// a CHECK_OK would be wrong because failure is genuinely tolerable (e.g.
  /// best-effort speculative work). Prefer CHECK_OK/DCHECK_OK when the call
  /// "cannot fail": those fail loudly if the impossible happens.
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define EXPLOREDB_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::exploredb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_STATUS_H_
