#ifndef EXPLOREDB_COMMON_MUTEX_H_
#define EXPLOREDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace exploredb {

/// std::mutex annotated as a thread-safety capability. libstdc++'s mutex has
/// no annotations, so Clang's analysis cannot see through it; every class in
/// ExploreDB that owns a lock uses this wrapper (or SharedMutex below) and
/// marks the protected members GUARDED_BY the wrapper.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for interop with std APIs that need one (e.g.
  /// std::condition_variable). Callers taking this path are responsible for
  /// keeping the analysis informed (see CondVar::Wait).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII exclusive lock over a Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex while keeping the annotations sound:
/// Wait() requires the lock, releases it while blocked, and reacquires it
/// before returning — exactly the std::condition_variable contract.
class CondVar {
 public:
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex, block, then release ownership so
    // the unique_lock destructor leaves the (reacquired) lock held.
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait() with a timeout: returns after a notification or once `timeout`
  /// elapses, whichever comes first (the lock is reacquired either way).
  /// Spurious wakeups are possible, as with Wait — callers loop on their
  /// predicate.
  void WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex annotated as a capability: exclusive lock for writers
/// (cracking mutates), shared lock for read-only queries.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_MUTEX_H_
