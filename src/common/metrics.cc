#include "common/metrics.h"

#include <cstdio>

#include "common/check.h"

namespace exploredb {

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Cell& c : buckets_) {
    total += c.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const Cell& c : buckets_) {
    counts.push_back(c.value.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the target observation (1-based), then the bucket containing it.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;

    // Interpolate within [lower, upper] of this bucket. The overflow bucket
    // has no upper bound; report its lower bound (a conservative estimate).
    const double lower =
        b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
    if (b == bounds_.size()) return lower;
    const double upper = static_cast<double>(bounds_[b]);
    const double into =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * into;
  }
  // q == 1 with rounding: the last non-empty bucket's bound.
  for (size_t b = counts.size(); b-- > 0;) {
    if (counts[b] == 0) continue;
    return b == bounds_.size() ? static_cast<double>(bounds_.back())
                               : static_cast<double>(bounds_[b]);
  }
  return 0.0;
}

void Histogram::ResetForTest() {
  for (Cell& c : buckets_) c.value.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::LatencyBoundsNanos() {
  // 1us, 4us, 16us, ... x4 up to ~17s: 13 buckets covering everything from a
  // cache-hit lookup to a pathological full scan.
  std::vector<int64_t> bounds;
  for (int64_t b = 1'000; b <= 17'179'869'184; b *= 4) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.counter = std::make_unique<Counter>();
    e.help = help;
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.gauge = std::make_unique<Gauge>();
    e.help = help;
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds,
                                         const std::string& help) {
  MutexLock lock(mu_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    CHECK(e.counter == nullptr && e.gauge == nullptr);
    if (bounds.empty()) bounds = Histogram::LatencyBoundsNanos();
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.help = help;
  }
  return e.histogram.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[128];
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    if (e.counter != nullptr) {
      out += "# TYPE " + name + " counter\n";
      std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(e.counter->Value()));
      out += buf;
    } else if (e.gauge != nullptr) {
      out += "# TYPE " + name + " gauge\n";
      std::snprintf(buf, sizeof(buf), "%s %lld\n", name.c_str(),
                    static_cast<long long>(e.gauge->Value()));
      out += buf;
    } else if (e.histogram != nullptr) {
      out += "# TYPE " + name + " histogram\n";
      const std::vector<uint64_t> counts = e.histogram->BucketCounts();
      const std::vector<int64_t>& bounds = e.histogram->bounds();
      uint64_t cumulative = 0;
      for (size_t b = 0; b < counts.size(); ++b) {
        cumulative += counts[b];
        if (b < bounds.size()) {
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%lld\"} %llu\n",
                        name.c_str(), static_cast<long long>(bounds[b]),
                        static_cast<unsigned long long>(cumulative));
        } else {
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                        name.c_str(),
                        static_cast<unsigned long long>(cumulative));
        }
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "%s_sum %lld\n", name.c_str(),
                    static_cast<long long>(e.histogram->Sum()));
      out += buf;
      std::snprintf(buf, sizeof(buf), "%s_count %llu\n", name.c_str(),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
  }
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  MutexLock lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (e.counter != nullptr) e.counter->ResetForTest();
    if (e.gauge != nullptr) e.gauge->ResetForTest();
    if (e.histogram != nullptr) e.histogram->ResetForTest();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrumented code may run during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace exploredb
