#include "common/metrics.h"

#include <cstdio>

#include "common/check.h"

namespace exploredb {

namespace {

// One-release deprecation aliases from the Prometheus naming audit: the left
// column is the historical name, the right column the canonical one (base-
// unit suffixes, unit before _total). Lookups through either name return the
// same metric object, and PrometheusText() re-emits the canonical series
// under the old name so existing scrape configs keep working for one
// release. Delete the row (and the old name's consumers) next release.
struct MetricAlias {
  const char* deprecated;
  const char* canonical;
};

constexpr MetricAlias kDeprecatedAliases[] = {
    {"exploredb_query_latency_ns", "exploredb_query_latency_seconds"},
    {"exploredb_threadpool_task_run_ns",
     "exploredb_threadpool_task_run_seconds"},
    {"exploredb_storage_bytes_raw_total",
     "exploredb_storage_raw_bytes_total"},
    {"exploredb_storage_bytes_compressed_total",
     "exploredb_storage_compressed_bytes_total"},
};

// Canonical name for `name` (identity for non-deprecated names).
const std::string& ResolveAlias(const std::string& name,
                                std::string* storage) {
  for (const MetricAlias& a : kDeprecatedAliases) {
    if (name == a.deprecated) {
      *storage = a.canonical;
      return *storage;
    }
  }
  return name;
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Cell& c : buckets_) {
    total += c.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const Cell& c : buckets_) {
    counts.push_back(c.value.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the target observation (1-based), then the bucket containing it.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;

    // Interpolate within [lower, upper] of this bucket. The overflow bucket
    // has no upper bound; report its lower bound (a conservative estimate).
    const double lower =
        b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
    if (b == bounds_.size()) return lower;
    const double upper = static_cast<double>(bounds_[b]);
    const double into =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * into;
  }
  // q == 1 with rounding: the last non-empty bucket's bound.
  for (size_t b = counts.size(); b-- > 0;) {
    if (counts[b] == 0) continue;
    return b == bounds_.size() ? static_cast<double>(bounds_.back())
                               : static_cast<double>(bounds_[b]);
  }
  return 0.0;
}

void Histogram::ResetForTest() {
  for (Cell& c : buckets_) c.value.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::LatencyBoundsNanos() {
  // 1us, 4us, 16us, ... x4 up to ~17s: 13 buckets covering everything from a
  // cache-hit lookup to a pathological full scan.
  std::vector<int64_t> bounds;
  for (int64_t b = 1'000; b <= 17'179'869'184; b *= 4) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::string alias_storage;
  MutexLock lock(mu_);
  Entry& e = metrics_[ResolveAlias(name, &alias_storage)];
  if (e.counter == nullptr) {
    CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.counter = std::make_unique<Counter>();
    e.help = help;
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::string alias_storage;
  MutexLock lock(mu_);
  Entry& e = metrics_[ResolveAlias(name, &alias_storage)];
  if (e.gauge == nullptr) {
    CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.gauge = std::make_unique<Gauge>();
    e.help = help;
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds,
                                         const std::string& help) {
  std::string alias_storage;
  MutexLock lock(mu_);
  Entry& e = metrics_[ResolveAlias(name, &alias_storage)];
  if (e.histogram == nullptr) {
    CHECK(e.counter == nullptr && e.gauge == nullptr);
    if (bounds.empty()) bounds = Histogram::LatencyBoundsNanos();
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.help = help;
  }
  return e.histogram.get();
}

void MetricsRegistry::SetScale(const std::string& name, double scale) {
  std::string alias_storage;
  MutexLock lock(mu_);
  auto it = metrics_.find(ResolveAlias(name, &alias_storage));
  if (it != metrics_.end()) it->second.scale = scale;
}

namespace {

// `name` decomposed into its base metric name and (possibly empty) label
// pairs — `exploredb_x_total{tenant="a"}` -> ("exploredb_x_total",
// `tenant="a"`). Plain names pass through with empty labels.
void SplitLabeledName(const std::string& name, std::string* base,
                      std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

// Sample name for a plain series or one suffixed series of a histogram:
// base [+ suffix] [+ {labels[, extra]}].
std::string SampleName(const std::string& base, const std::string& labels,
                       const char* suffix = "", const std::string& extra = "") {
  std::string out = base;
  out += suffix;
  if (labels.empty() && extra.empty()) return out;
  out += "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

// Emits one metric's # TYPE line (once per base, caller-gated via
// `emit_type`) and samples, multiplying values by `scale`. scale == 1.0
// keeps the historical integer formatting (dashboards grep exact
// `le="1000"` bounds); scaled series print %g.
void EmitEntry(const std::string& base, const std::string& labels,
               bool emit_type, const Counter* counter, const Gauge* gauge,
               const Histogram* histogram, double scale, std::string* out) {
  char buf[192];
  if (counter != nullptr) {
    if (emit_type) *out += "# TYPE " + base + " counter\n";
    const std::string name = SampleName(base, labels);
    if (scale == 1.0) {
      std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(counter->Value()));
    } else {
      std::snprintf(buf, sizeof(buf), "%s %g\n", name.c_str(),
                    static_cast<double>(counter->Value()) * scale);
    }
    *out += buf;
  } else if (gauge != nullptr) {
    if (emit_type) *out += "# TYPE " + base + " gauge\n";
    const std::string name = SampleName(base, labels);
    if (scale == 1.0) {
      std::snprintf(buf, sizeof(buf), "%s %lld\n", name.c_str(),
                    static_cast<long long>(gauge->Value()));
    } else {
      std::snprintf(buf, sizeof(buf), "%s %g\n", name.c_str(),
                    static_cast<double>(gauge->Value()) * scale);
    }
    *out += buf;
  } else if (histogram != nullptr) {
    if (emit_type) *out += "# TYPE " + base + " histogram\n";
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    const std::vector<int64_t>& bounds = histogram->bounds();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      cumulative += counts[b];
      std::string le;
      if (b == bounds.size()) {
        le = "le=\"+Inf\"";
      } else if (scale == 1.0) {
        std::snprintf(buf, sizeof(buf), "le=\"%lld\"",
                      static_cast<long long>(bounds[b]));
        le = buf;
      } else {
        std::snprintf(buf, sizeof(buf), "le=\"%g\"",
                      static_cast<double>(bounds[b]) * scale);
        le = buf;
      }
      std::snprintf(buf, sizeof(buf), "%s %llu\n",
                    SampleName(base, labels, "_bucket", le).c_str(),
                    static_cast<unsigned long long>(cumulative));
      *out += buf;
    }
    if (scale == 1.0) {
      std::snprintf(buf, sizeof(buf), "%s %lld\n",
                    SampleName(base, labels, "_sum").c_str(),
                    static_cast<long long>(histogram->Sum()));
    } else {
      std::snprintf(buf, sizeof(buf), "%s %g\n",
                    SampleName(base, labels, "_sum").c_str(),
                    static_cast<double>(histogram->Sum()) * scale);
    }
    *out += buf;
    std::snprintf(buf, sizeof(buf), "%s %llu\n",
                  SampleName(base, labels, "_count").c_str(),
                  static_cast<unsigned long long>(cumulative));
    *out += buf;
  }
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  // Group series by base name so a labeled family (`base{tenant="a"}`,
  // `base{tenant="b"}`, possibly a plain `base`) shares one # HELP/# TYPE
  // block — required by the exposition format, which wants all samples of a
  // metric contiguous. std::map iteration keeps bases and, within a base,
  // label values in name order.
  std::map<std::string, std::vector<std::pair<std::string, const Entry*>>>
      families;
  for (const auto& [name, e] : metrics_) {
    std::string base;
    std::string labels;
    SplitLabeledName(name, &base, &labels);
    families[base].emplace_back(std::move(labels), &e);
  }
  for (const auto& [base, series] : families) {
    // First non-empty help in the family names the whole block.
    for (const auto& [labels, e] : series) {
      if (!e->help.empty()) {
        out += "# HELP " + base + " " + e->help + "\n";
        break;
      }
    }
    bool first = true;
    for (const auto& [labels, e] : series) {
      EmitEntry(base, labels, first, e->counter.get(), e->gauge.get(),
                e->histogram.get(), e->scale, &out);
      first = false;
    }
  }
  // Deprecated aliases: re-emit the canonical series under the old name with
  // scale 1.0, so the old exposition (raw nanoseconds etc.) is reproduced
  // byte-compatibly until the alias is deleted.
  for (const MetricAlias& a : kDeprecatedAliases) {
    auto it = metrics_.find(a.canonical);
    if (it == metrics_.end()) continue;
    const Entry& e = it->second;
    out += std::string("# HELP ") + a.deprecated + " Deprecated alias of " +
           a.canonical + " (removed next release)\n";
    EmitEntry(a.deprecated, "", true, e.counter.get(), e.gauge.get(),
              e.histogram.get(), 1.0, &out);
  }
  return out;
}

std::string LabeledMetricName(const std::string& base,
                              const std::string& label,
                              const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped += c;
    }
  }
  return base + "{" + label + "=\"" + escaped + "\"}";
}

void MetricsRegistry::ResetAllForTest() {
  MutexLock lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (e.counter != nullptr) e.counter->ResetForTest();
    if (e.gauge != nullptr) e.gauge->ResetForTest();
    if (e.histogram != nullptr) e.histogram->ResetForTest();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrumented code may run during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace exploredb
