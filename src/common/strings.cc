#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace exploredb {

std::vector<std::string_view> SplitFields(std::string_view line, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view field) {
  field = Trim(field);
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Status::ParseError("not an int64: '" + std::string(field) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view field) {
  field = Trim(field);
  if (field.empty()) return Status::ParseError("empty double field");
  // std::from_chars<double> is not available on all libstdc++ configurations
  // we target, so route through strtod with an explicit bounds check.
  std::string buf(field);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not a double: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatDurationNanos(int64_t nanos) {
  char buf[32];
  if (nanos < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  } else if (nanos < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%lldus",
                  static_cast<long long>(nanos / 1'000));
  } else if (nanos < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(nanos) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(nanos) / 1e9);
  }
  return buf;
}

}  // namespace exploredb
