#ifndef EXPLOREDB_COMMON_STOPWATCH_H_
#define EXPLOREDB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace exploredb {

/// Wall-clock stopwatch used by the benchmark harnesses and adaptive
/// components (e.g. the speculative-execution budgeter).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the epoch to now.
  void Restart();

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedMicros() const;
  int64_t ElapsedNanos() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_STOPWATCH_H_
