#ifndef EXPLOREDB_COMMON_ANNOTATIONS_H_
#define EXPLOREDB_COMMON_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes (no-ops on other compilers).
///
/// Classes that own a mutex mark the protected state GUARDED_BY(mu_) and the
/// internal helpers that assume the lock REQUIRES(mu_); the analysis then
/// proves, at compile time, that no code path touches the state without the
/// lock. CI builds with `-Wthread-safety -Werror` so a violation is a build
/// break, not a TSan lottery ticket.
///
/// The standard library's mutexes are not annotated, so the wrappers in
/// common/mutex.h (Mutex, SharedMutex, MutexLock, ...) are what annotated
/// code must use; see that header.

#if defined(__clang__) && defined(__has_attribute)
#define EXPLOREDB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define EXPLOREDB_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability (mutex-like).
#define CAPABILITY(x) EXPLOREDB_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime equals a critical section.
#define SCOPED_CAPABILITY EXPLOREDB_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) EXPLOREDB_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) EXPLOREDB_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that may only be called with the given capabilities held.
#define REQUIRES(...) \
  EXPLOREDB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EXPLOREDB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires/releases the given capabilities.
#define ACQUIRE(...) \
  EXPLOREDB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  EXPLOREDB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  EXPLOREDB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  EXPLOREDB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the given capabilities held
/// (deadlock prevention for non-reentrant locks).
#define EXCLUDES(...) \
  EXPLOREDB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability protecting the returned data.
#define RETURN_CAPABILITY(x) EXPLOREDB_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function deliberately exempt from the analysis.
#define NO_THREAD_SAFETY_ANALYSIS \
  EXPLOREDB_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Assertion that the calling thread already holds `x` (runtime-checked by
/// the caller, trusted by the analysis).
#define ASSERT_CAPABILITY(x) \
  EXPLOREDB_THREAD_ANNOTATION__(assert_capability(x))

#endif  // EXPLOREDB_COMMON_ANNOTATIONS_H_
