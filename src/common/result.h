#ifndef EXPLOREDB_COMMON_RESULT_H_
#define EXPLOREDB_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace exploredb {

/// Either a value of type T or a non-OK Status explaining why the value could
/// not be produced. The error-handling counterpart of Status for functions
/// that return data (mirrors arrow::Result).
///
/// Usage:
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
///
/// Like Status, Result is [[nodiscard]]: discarding one silently drops both
/// an error AND a computed value. Propagate (EXPLOREDB_ASSIGN_OR_RETURN),
/// assert success (CHECK_OK), or document the drop with IgnoreError().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs a failed result from a non-OK status. It is a programming
  /// error to construct a Result from an OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    // Misuse aborts with a message even in Release builds: an OK status in
    // the error slot would otherwise surface later as a value-less Result.
    CHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if a value is held, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; aborts (in every build type) when !ok(), with
  /// the stored error in the message.
  const T& ValueOrDie() const& {
    CHECK_OK(*this);
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CHECK_OK(*this);
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CHECK_OK(*this);
    return std::move(std::get<T>(repr_));
  }

  /// Returns the held value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  /// Explicitly consumes the result (value and error alike) without acting
  /// on it; see Status::IgnoreError for when this is appropriate.
  void IgnoreError() const {}

 private:
  std::variant<Status, T> repr_;
};

/// Propagates the error of a Result expression, otherwise binds its value.
#define EXPLOREDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie()

#define EXPLOREDB_ASSIGN_OR_RETURN(lhs, expr)                               \
  EXPLOREDB_ASSIGN_OR_RETURN_IMPL(                                          \
      EXPLOREDB_CONCAT_NAME(_result_, __COUNTER__), lhs, expr)

#define EXPLOREDB_CONCAT_NAME_INNER(a, b) a##b
#define EXPLOREDB_CONCAT_NAME(a, b) EXPLOREDB_CONCAT_NAME_INNER(a, b)

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_RESULT_H_
