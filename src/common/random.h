#ifndef EXPLOREDB_COMMON_RANDOM_H_
#define EXPLOREDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace exploredb {

/// Deterministic pseudo-random generator (xoshiro256**). All randomized
/// components in ExploreDB draw from an explicitly seeded Random so that
/// experiments and tests are reproducible bit-for-bit across runs.
class Random {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses rejection-inversion; suitable for large n.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_RANDOM_H_
