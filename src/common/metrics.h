#ifndef EXPLOREDB_COMMON_METRICS_H_
#define EXPLOREDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace exploredb {

/// Process-wide metrics: counters, gauges, and fixed-bucket latency
/// histograms, collected in a named registry and exported in Prometheus text
/// exposition format. Everything here is designed for hot-path writers:
///
///  - Counter increments are a relaxed atomic add to a thread-sharded slot
///    (cache-line padded), merged only when somebody reads the value. Two
///    threads incrementing the same counter never touch the same cache line.
///  - Gauges are a single atomic (set/add are rare: queue depths, sizes).
///  - Histograms bucket a value with a branch-free linear probe over a small
///    fixed bound table and do one relaxed add; quantiles are estimated from
///    the bucket counts on read.
///
/// Lookup by name takes the registry mutex, so instrumentation sites resolve
/// their metric once into a function-local static:
///
///   static Counter* hits = Metrics().GetCounter("exploredb_cache_hits_total");
///   hits->Add();
///
/// Registered metrics are never removed (pointers stay valid for the process
/// lifetime); ResetAllForTest() zeroes values without invalidating pointers.
///
/// Naming follows the Prometheus conventions: base-unit suffixes (_seconds,
/// _bytes) and _total only on counters. Metrics whose natural recording unit
/// differs from the exposition unit (latencies recorded in nanoseconds,
/// exposed in seconds) register an exposition scale (SetScale): Record()
/// call sites keep passing raw integers and PrometheusText() multiplies on
/// the way out. Renamed metrics stay reachable for one release through a
/// deprecation alias table (metrics.cc): lookups by the old name resolve to
/// the canonical metric, and the exposition re-emits the old series
/// (unscaled, exactly as it historically appeared) next to the new one.

/// Monotonic counter, sharded by thread to keep increments contention-free.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all shards. Concurrent adds may or may not be included (the
  /// usual monotonic-counter read contract).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void ResetForTest() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread shard assignment (registration order modulo kShards):
  /// threads always hit the same line, and up to kShards threads contend on
  /// none.
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A value that can go up and down (queue depth, resident entries).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so Record() is a probe plus one relaxed add. Quantiles are
/// estimated by linear interpolation inside the containing bucket — the
/// estimate is always within that bucket's bounds, which is what the p50/p95/
/// p99 latency panels need.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; an implicit
  /// +Inf bucket catches the overflow.
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    buckets_[b].value.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated value at quantile q in [0, 1]. Returns 0 on an empty
  /// histogram. The result lies within the bounds of the bucket containing
  /// the q-th observation (the +Inf bucket reports its lower bound).
  double Quantile(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;

  void ResetForTest();

  /// Default bounds for nanosecond latencies: 1us .. ~17s, powers of 4.
  static std::vector<int64_t> LatencyBoundsNanos();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  const std::vector<int64_t> bounds_;
  std::vector<Cell> buckets_;  // bounds_.size() + 1 (+Inf)
  std::atomic<int64_t> sum_{0};
};

/// Name -> metric registry with Prometheus text exposition. One process-wide
/// instance (Metrics()); tests may construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. Returned pointers are valid for the
  /// registry's lifetime. `help` is kept from the first registration.
  Counter* GetCounter(const std::string& name, const std::string& help = "")
      EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help = "")
      EXCLUDES(mu_);
  /// Empty `bounds` selects Histogram::LatencyBoundsNanos(). Bounds are fixed
  /// by the first registration; later calls with the same name return the
  /// existing histogram regardless of `bounds`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = {},
                          const std::string& help = "") EXCLUDES(mu_);

  /// Sets the exposition scale of `name` (default 1.0): recorded values are
  /// multiplied by `scale` in PrometheusText() so hot paths can record raw
  /// nanoseconds into a `_seconds` series (scale 1e-9) or millionths into a
  /// ratio gauge (scale 1e-6). Readers through Value()/Quantile() always see
  /// the raw recorded unit. No-op when `name` is unregistered.
  void SetScale(const std::string& name, double scale) EXCLUDES(mu_);

  /// Prometheus text exposition (# HELP / # TYPE + samples), metrics in
  /// name order. Histograms emit cumulative `_bucket{le=...}`, `_sum`,
  /// `_count` series. Deprecated alias names are re-emitted after the
  /// canonical series (see the naming note above).
  std::string PrometheusText() const EXCLUDES(mu_);

  /// Zeroes every registered metric without invalidating pointers.
  void ResetAllForTest() EXCLUDES(mu_);

  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::string help;
    double scale = 1.0;  ///< exposition multiplier (SetScale)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> metrics_ GUARDED_BY(mu_);
};

/// Shorthand for the process-wide registry.
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

/// Builds a labeled series name — `base{label="value"}` — usable anywhere a
/// metric name is (the registry keys by the full string, so each label value
/// is its own counter/gauge). PrometheusText() groups all series of a base
/// name under one # HELP/# TYPE block, which is how per-tenant series
/// (`exploredb_session_queries_total{tenant="acme"}`) become legal
/// exposition. The label value is sanitized: backslash, double quote, and
/// newline are escaped per the Prometheus text format.
std::string LabeledMetricName(const std::string& base,
                              const std::string& label,
                              const std::string& value);

}  // namespace exploredb

#endif  // EXPLOREDB_COMMON_METRICS_H_
