#include "common/random.h"

#include <cmath>

namespace exploredb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Random::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return Uniform(n);
  // Rejection-inversion sampling (Hormann & Derflinger).
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(x) - 1;
    }
  }
}

}  // namespace exploredb
