#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/metrics.h"
#include "common/trace.h"

namespace exploredb {

namespace {

/// Pool-wide metrics, shared by every ThreadPool instance: the interesting
/// signal (is the process's task backlog growing? how long do tasks run?) is
/// process-level, and per-instance registration would leak one gauge per
/// short-lived test pool.
Gauge* QueueDepthGauge() {
  static Gauge* g = Metrics().GetGauge(
      "exploredb_threadpool_queue_depth",
      "Tasks waiting in thread-pool queues (all pools)");
  return g;
}

Counter* TasksCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_threadpool_tasks_total",
      "Tasks executed by thread-pool workers");
  return c;
}

Histogram* TaskRunHistogram() {
  static Histogram* h = [] {
    Histogram* hist = Metrics().GetHistogram(
        "exploredb_threadpool_task_run_seconds", {},
        "Thread-pool task execution time (recorded in ns, exposed in "
        "seconds)");
    Metrics().SetScale("exploredb_threadpool_task_run_seconds", 1e-9);
    return hist;
  }();
  return h;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // no workers: degenerate to synchronous execution
    return;
  }
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  QueueDepthGauge()->Add(1);
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    QueueDepthGauge()->Sub(1);
    TasksCounter()->Add();
    int64_t run_ns = 0;
    {
      TraceSpan span("task", Tracer::enabled(), &run_ns);
      task();
    }
    TaskRunHistogram()->Record(run_ns);
  }
}

namespace {

/// State shared between the caller and the helper tasks of one ParallelFor.
/// Heap-allocated and reference-counted: helper tasks may still be sitting
/// in the queue after the dispatch logically finished (they wake up, find no
/// chunks left, and drop their reference).
struct ForState {
  explicit ForState(size_t n, const std::function<void(size_t)>& b)
      : count(n), body(b) {}

  const size_t count;
  const std::function<void(size_t)>& body;  // outlives state: caller blocks
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<uint32_t> participants{0};
  Mutex mu;  // guards only the done_cv sleep; progress counters are atomic
  CondVar done_cv;

  /// Claims and runs chunks until none remain; returns chunks run here.
  size_t Drain() {
    size_t ran = 0;
    for (;;) {
      size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= count) break;
      body(chunk);
      ++ran;
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        MutexLock lock(mu);
        done_cv.NotifyAll();
      }
    }
    if (ran > 0) participants.fetch_add(1, std::memory_order_relaxed);
    return ran;
  }
};

}  // namespace

ThreadPool::ForStats ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t)>& body) {
  ForStats stats;
  stats.chunks = count;
  if (count == 0) return stats;

  auto state = std::make_shared<ForState>(count, body);
  // One helper per worker, capped at the chunk count (extra helpers would
  // wake up to an empty claim counter).
  size_t helpers = std::min(threads_.size(), count);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();  // caller participates: guarantees progress

  {
    MutexLock lock(state->mu);
    while (state->completed.load(std::memory_order_acquire) != count) {
      state->done_cv.Wait(state->mu);
    }
  }
  stats.threads_used =
      std::max<uint32_t>(1, state->participants.load(std::memory_order_relaxed));
  return stats;
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw == 0 ? 4 : hw);
  }();
  return pool;
}

}  // namespace exploredb
