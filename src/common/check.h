#ifndef EXPLOREDB_COMMON_CHECK_H_
#define EXPLOREDB_COMMON_CHECK_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.h"

/// CHECK/CHECK_OK/DCHECK: invariant assertions that, unlike assert(), survive
/// NDEBUG. A production engine serving live traffic must fail loudly at the
/// corruption site, not return garbage — Release builds keep every CHECK.
///
/// Policy (see DESIGN.md "Correctness tooling"):
///  - CHECK      for invariants whose violation means memory-unsafe or
///               silently-wrong answers (index misuse, broken adaptive
///               structures). Always on.
///  - CHECK_OK   for Status/Result expressions that must succeed.
///  - DCHECK     for expensive validation (O(n) walks) worth paying for only
///               in debug/sanitizer builds. Compiles to nothing in NDEBUG but
///               the condition stays syntax- and type-checked.
///
/// Consuming a "cannot fail" Status: Status and Result<T> are [[nodiscard]],
/// so a call site that has already established the preconditions of a
/// fallible callee must still consume the returned status. The idiom is
///
///   Status st = column.Append(v);
///   DCHECK_OK(st);  // arity and types validated above
///
/// — NOT `(void)st`. A void-cast asserts nothing and rots silently when the
/// callee later grows a new failure mode; DCHECK_OK is free in Release yet
/// aborts in debug/sanitizer builds the day the "cannot fail" claim breaks.
/// Use CHECK_OK when the violated precondition would corrupt data downstream
/// even in production. exploredb-lint rule R1 enforces the discipline
/// tree-wide (tools/lint/). The only sanctioned silent drop is an explicit
/// `st.IgnoreError()` with a comment saying why failure is tolerable.

namespace exploredb {
namespace internal {

/// Prints the failure and aborts. Out-of-line cold path so a CHECK costs one
/// branch at the use site.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr,
                                   const std::string& detail = {}) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               detail.empty() ? "" : " — ", detail.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Stringifies both operands of a binary CHECK for the failure message.
template <typename A, typename B>
std::string BinaryOpDetail(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  return os.str();
}

/// Failure detail for CHECK_OK: works for Result<T> (has .status()) and for
/// plain Status via overload resolution, without this header depending on
/// result.h (result.h includes us).
template <typename R>
auto StatusDetail(const R& r) -> decltype(r.status().ToString()) {
  return r.status().ToString();
}
inline std::string StatusDetail(const Status& s) { return s.ToString(); }

}  // namespace internal
}  // namespace exploredb

#define CHECK(cond)                                              \
  do {                                                           \
    if (!(cond)) {                                               \
      ::exploredb::internal::CheckFail(__FILE__, __LINE__, #cond); \
    }                                                            \
  } while (0)

/// Aborts with the Status message when `expr` (a Status or Result<T>) is not
/// OK.
#define CHECK_OK(expr)                                                \
  do {                                                                \
    const auto& _chk = (expr);                                        \
    if (!_chk.ok()) {                                                 \
      ::exploredb::internal::CheckFail(                               \
          __FILE__, __LINE__, #expr,                                  \
          ::exploredb::internal::StatusDetail(_chk));                 \
    }                                                                 \
  } while (0)

#define EXPLOREDB_CHECK_OP(op, a, b)                                        \
  do {                                                                      \
    const auto& _lhs = (a);                                                 \
    const auto& _rhs = (b);                                                 \
    if (!(_lhs op _rhs)) {                                                  \
      ::exploredb::internal::CheckFail(                                     \
          __FILE__, __LINE__, #a " " #op " " #b,                            \
          ::exploredb::internal::BinaryOpDetail(_lhs, _rhs));               \
    }                                                                       \
  } while (0)

#define CHECK_EQ(a, b) EXPLOREDB_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) EXPLOREDB_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) EXPLOREDB_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) EXPLOREDB_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) EXPLOREDB_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) EXPLOREDB_CHECK_OP(>=, a, b)

#ifdef NDEBUG
/// Debug-only: condition is not evaluated, but stays compiled.
#define DCHECK(cond) \
  do {               \
    if (false) {     \
      (void)(cond);  \
    }                \
  } while (0)
#define DCHECK_OK(expr) \
  do {                  \
    if (false) {        \
      (void)(expr);     \
    }                   \
  } while (0)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_OK(expr) CHECK_OK(expr)
#endif

#endif  // EXPLOREDB_COMMON_CHECK_H_
