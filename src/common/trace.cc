#include "common/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/annotations.h"
#include "common/mutex.h"

namespace exploredb {

namespace {

/// One thread's ring of completed spans. Written only by the owning thread,
/// read by Snapshot() from any thread; both sides take `mu` (spans are
/// coarse — phases and morsels — so the uncontended lock is noise).
/// Rings are owned by the global registry and survive thread exit, so pool
/// workers' events stay visible to a Snapshot taken after a query finishes.
struct ThreadRing {
  Mutex mu;
  std::array<TraceEvent, Tracer::kRingCapacity> events GUARDED_BY(mu);
  size_t size GUARDED_BY(mu) = 0;
  size_t next GUARDED_BY(mu) = 0;
  // NOLINT-exploredb(guarded-by): assigned once under the registry lock
  // before the ring is published to its owning thread; read-only after.
  uint32_t tid = 0;
};

struct RingRegistry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings GUARDED_BY(mu);
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();  // leaked: see Tracer
  return *registry;
}

ThreadRing* LocalRing() {
  thread_local ThreadRing* ring = [] {
    auto owned = std::make_unique<ThreadRing>();
    ThreadRing* r = owned.get();
    RingRegistry& reg = Registry();
    MutexLock lock(reg.mu);
    r->tid = static_cast<uint32_t>(reg.rings.size());
    reg.rings.push_back(std::move(owned));
    return r;
  }();
  return ring;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

bool EnabledByEnv() {
  const char* v = std::getenv("EXPLOREDB_TRACE");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

thread_local uint16_t tls_depth = 0;

}  // namespace

std::atomic<bool> Tracer::enabled_{EnabledByEnv()};

int64_t Tracer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

void Tracer::Record(const TraceEvent& event) {
  ThreadRing* ring = LocalRing();
  MutexLock lock(ring->mu);
  ring->events[ring->next] = event;
  ring->events[ring->next].tid = ring->tid;
  ring->next = (ring->next + 1) % kRingCapacity;
  if (ring->size < kRingCapacity) ++ring->size;
}

std::vector<TraceEvent> Tracer::Snapshot() {
  std::vector<TraceEvent> out;
  RingRegistry& reg = Registry();
  MutexLock registry_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    MutexLock lock(ring->mu);
    // Oldest first: when wrapped, the oldest slot is `next`.
    const size_t start = ring->size < kRingCapacity ? 0 : ring->next;
    for (size_t i = 0; i < ring->size; ++i) {
      out.push_back(ring->events[(start + i) % kRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::vector<TraceEvent> Tracer::SnapshotSince(int64_t t0) {
  std::vector<TraceEvent> all = Snapshot();
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : all) {
    if (e.start_ns >= t0) out.push_back(e);
  }
  return out;
}

void Tracer::Clear() {
  RingRegistry& reg = Registry();
  MutexLock registry_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    MutexLock lock(ring->mu);
    ring->size = 0;
    ring->next = 0;
  }
}

std::string Tracer::ChromeTraceJson(const std::vector<TraceEvent>& events) {
  // The trace_event "complete" ("X") format: one object per span, timestamps
  // and durations in microseconds. Span names are short identifiers, but
  // escape the JSON-relevant bytes anyway.
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const TraceEvent& e : events) {
    std::string name;
    for (const char* p = e.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') name += '\\';
      name += *p;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"exploredb\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  first ? "" : ",", name.c_str(),
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid);
    out += buf;
    first = false;
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::ChromeTraceJson() { return ChromeTraceJson(Snapshot()); }

Status Tracer::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

TraceSpan::TraceSpan(const char* name, bool enabled, int64_t* accum)
    : name_(name), accum_(accum), armed_(enabled || accum != nullptr),
      record_(enabled) {
  if (!armed_) return;  // nothing to measure: zero cost
  if (record_) depth_ = tls_depth++;
  start_ns_ = Tracer::NowNs();
}

void TraceSpan::Stop() {
  if (!armed_) return;
  armed_ = false;
  const int64_t dur = Tracer::NowNs() - start_ns_;
  if (accum_ != nullptr) *accum_ += dur;
  if (!record_) return;
  --tls_depth;
  TraceEvent e;
  std::strncpy(e.name, name_, TraceEvent::kMaxName);
  e.start_ns = start_ns_;
  e.dur_ns = dur;
  e.depth = depth_;
  Tracer::Record(e);
}

}  // namespace exploredb
