#ifndef EXPLOREDB_CRACKING_ZORDER_H_
#define EXPLOREDB_CRACKING_ZORDER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cracking/cracker_column.h"

namespace exploredb {

/// Z-order (Morton) interleaving of two 31-bit non-negative coordinates
/// into one int64 key. Nearby points in 2-D stay nearby in the 1-D order,
/// so the 1-D adaptive-indexing machinery serves the multidimensional
/// window queries of exploration frontends (semantic windows, tile maps).
int64_t MortonEncode(uint32_t x, uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(int64_t z, uint32_t* x, uint32_t* y);

/// Decomposes the axis-aligned rectangle [x0, x1) x [y0, y1) into at most
/// `max_ranges` half-open Z-key ranges that together cover exactly the
/// rectangle's cells... conservatively: the union always covers the
/// rectangle; with a generous budget it covers nothing else. Fewer ranges
/// mean more false positives to post-filter.
std::vector<std::pair<int64_t, int64_t>> MortonRanges(uint32_t x0, uint32_t y0,
                                                      uint32_t x1, uint32_t y1,
                                                      size_t max_ranges);

/// 2-D point set indexed by cracking on Z-order keys: every window query
/// cracks the key column around its Z-ranges, adapting the physical order
/// to the regions the user explores.
class ZOrderCrackerIndex {
 public:
  /// Coordinates must be < 2^31. Point i keeps id i.
  static Result<ZOrderCrackerIndex> Build(const std::vector<uint32_t>& x,
                                          const std::vector<uint32_t>& y);

  /// Row ids of the points inside [x0, x1) x [y0, y1).
  /// `max_ranges` bounds the Z-range decomposition (default trades a few
  /// false positives, removed by post-filtering, for fewer cracks).
  std::vector<uint32_t> WindowQuery(uint32_t x0, uint32_t y0, uint32_t x1,
                                    uint32_t y1, size_t max_ranges = 32);

  /// Scan baseline for equivalence checks.
  std::vector<uint32_t> WindowQueryScan(uint32_t x0, uint32_t y0, uint32_t x1,
                                        uint32_t y1) const;

  const CrackingStats& stats() const { return cracker_->stats(); }
  /// Candidates examined by the last WindowQuery (incl. false positives).
  uint64_t last_candidates() const { return last_candidates_; }

 private:
  ZOrderCrackerIndex() = default;

  std::vector<uint32_t> xs_;
  std::vector<uint32_t> ys_;
  std::unique_ptr<CrackerColumn> cracker_;
  uint64_t last_candidates_ = 0;
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_ZORDER_H_
