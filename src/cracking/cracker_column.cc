#include "cracking/cracker_column.h"

#include <numeric>
#include <utility>

namespace exploredb {

CrackerColumn::CrackerColumn(std::vector<int64_t> values)
    : values_(std::move(values)),
      row_ids_(values_.size()),
      index_(values_.size()) {
  std::iota(row_ids_.begin(), row_ids_.end(), 0);
}

size_t CrackerColumn::CrackPiece(const CrackerIndex::Piece& piece,
                                 int64_t pivot) {
  // Hoare-style partition: values < pivot to the front, >= pivot to the back.
  size_t lo = piece.begin;
  size_t hi = piece.end;
  while (lo < hi) {
    if (values_[lo] < pivot) {
      ++lo;
    } else {
      --hi;
      std::swap(values_[lo], values_[hi]);
      std::swap(row_ids_[lo], row_ids_[hi]);
    }
    ++stats_.elements_touched;
  }
  ++stats_.cracks;
  index_.AddPivot(pivot, lo);
  return lo;
}

size_t CrackerColumn::CrackAt(int64_t pivot) {
  if (auto pos = index_.LowerBoundPosition(pivot)) return *pos;
  CrackerIndex::Piece piece = index_.FindPiece(pivot);
  return CrackPiece(piece, pivot);
}

CrackRange CrackerColumn::RangeSelect(int64_t lo, int64_t hi) {
  if (lo >= hi) return {0, 0};
  size_t begin = CrackAt(lo);
  size_t end = CrackAt(hi);
  return {begin, end};
}

}  // namespace exploredb
