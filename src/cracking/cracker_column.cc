#include "cracking/cracker_column.h"

#include <numeric>
#include <utility>

#include "common/metrics.h"

namespace exploredb {

namespace {

// Cracking progress across every cracker in the process: splits performed,
// elements moved while splitting, and queries answered read-only because
// both bounds were already pivots (the convergence signal — its share of
// total range queries rises toward 1 as a column converges).
Counter* SplitsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_cracker_splits_total", "Crack-in-two piece splits");
  return c;
}

Counter* ElementsTouchedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_cracker_elements_touched_total",
      "Elements compared/moved while cracking");
  return c;
}

Counter* ConvergedQueriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_cracker_converged_queries_total",
      "Range queries answered without cracking (both bounds were pivots)");
  return c;
}

}  // namespace

CrackerColumn::CrackerColumn(std::vector<int64_t> values)
    : values_(std::move(values)),
      row_ids_(values_.size()),
      index_(values_.size()) {
  std::iota(row_ids_.begin(), row_ids_.end(), 0);
}

size_t CrackerColumn::CrackPiece(const CrackerIndex::Piece& piece,
                                 int64_t pivot) {
  // Hoare-style partition: values < pivot to the front, >= pivot to the back.
  size_t lo = piece.begin;
  size_t hi = piece.end;
  while (lo < hi) {
    if (values_[lo] < pivot) {
      ++lo;
    } else {
      --hi;
      std::swap(values_[lo], values_[hi]);
      std::swap(row_ids_[lo], row_ids_[hi]);
    }
    ++stats_.elements_touched;
  }
  ++stats_.cracks;
  SplitsCounter()->Add();
  ElementsTouchedCounter()->Add(piece.end - piece.begin);
  index_.AddPivot(pivot, lo);
  return lo;
}

size_t CrackerColumn::CrackAt(int64_t pivot) {
  if (auto pos = index_.LowerBoundPosition(pivot)) return *pos;
  CrackerIndex::Piece piece = index_.FindPiece(pivot);
  return CrackPiece(piece, pivot);
}

CrackRange CrackerColumn::RangeSelect(int64_t lo, int64_t hi) {
  if (lo >= hi) return {0, 0};
  if (CanAnswerWithoutCracking(lo, hi)) ConvergedQueriesCounter()->Add();
  size_t begin = CrackAt(lo);
  size_t end = CrackAt(hi);
  return {begin, end};
}

Status CrackerColumn::Validate(const std::vector<int64_t>* original) const {
  const size_t n = values_.size();
  if (row_ids_.size() != n) {
    return Status::Internal("cracker column: " + std::to_string(n) +
                            " values but " + std::to_string(row_ids_.size()) +
                            " row ids");
  }
  if (index_.size() != n) {
    return Status::Internal("cracker column: index covers " +
                            std::to_string(index_.size()) + " of " +
                            std::to_string(n) + " values");
  }
  EXPLOREDB_RETURN_NOT_OK(index_.Validate());

  // Every piece's values must lie in the half-open interval of its bounding
  // pivots: [prev_pivot, pivot) before each pivot position, [last_pivot, inf)
  // after the last. One pass over values, pieces walked in pivot order.
  size_t begin = 0;
  std::optional<int64_t> lower;  // pivot bounding the current piece below
  auto check_piece = [&](size_t end, std::optional<int64_t> upper) -> Status {
    for (size_t i = begin; i < end; ++i) {
      if (lower && values_[i] < *lower) {
        return Status::Internal(
            "cracker column: values[" + std::to_string(i) + "] = " +
            std::to_string(values_[i]) + " below its piece's pivot " +
            std::to_string(*lower));
      }
      if (upper && values_[i] >= *upper) {
        return Status::Internal(
            "cracker column: values[" + std::to_string(i) + "] = " +
            std::to_string(values_[i]) + " not below the next pivot " +
            std::to_string(*upper));
      }
    }
    return Status::OK();
  };
  for (const auto& [pivot, pos] : index_.pivots()) {
    EXPLOREDB_RETURN_NOT_OK(check_piece(pos, pivot));
    begin = pos;
    lower = pivot;
  }
  EXPLOREDB_RETURN_NOT_OK(check_piece(n, std::nullopt));

  // row_ids_ must be a permutation of [0, n).
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    uint32_t id = row_ids_[i];
    if (id >= n || seen[id]) {
      return Status::Internal("cracker column: row id " + std::to_string(id) +
                              " at position " + std::to_string(i) +
                              (id >= n ? " out of range" : " duplicated"));
    }
    seen[id] = true;
  }

  if (original != nullptr) {
    if (original->size() != n) {
      return Status::Internal("cracker column: base column has " +
                              std::to_string(original->size()) +
                              " rows, cracked copy " + std::to_string(n));
    }
    for (size_t i = 0; i < n; ++i) {
      if (values_[i] != (*original)[row_ids_[i]]) {
        return Status::Internal(
            "cracker column: values[" + std::to_string(i) +
            "] disagrees with base row " + std::to_string(row_ids_[i]));
      }
    }
  }
  return Status::OK();
}

}  // namespace exploredb
