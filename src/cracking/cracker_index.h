#ifndef EXPLOREDB_CRACKING_CRACKER_INDEX_H_
#define EXPLOREDB_CRACKING_CRACKER_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

#include "common/status.h"

namespace exploredb {

/// The cracker index: an ordered map from pivot value to the first array
/// position holding values >= that pivot. Between two adjacent pivots lies a
/// "piece" — an unordered run whose values all fall in the pivot interval.
/// This is the tree the database-cracking papers maintain over the cracked
/// copy of a column [Idreos et al., CIDR'07].
class CrackerIndex {
 public:
  /// Half-open piece [begin, end) whose values v satisfy lo <= v < hi where
  /// lo/hi are the surrounding pivots (or the column extremes).
  struct Piece {
    size_t begin;
    size_t end;
  };

  /// Creates an index over an uncracked array of `size` elements (one piece).
  explicit CrackerIndex(size_t size) : size_(size) {}

  /// Records that positions [0, pos) hold values < pivot and [pos, size)
  /// hold values >= pivot within the piece the pivot splits.
  void AddPivot(int64_t pivot, size_t pos) { pivots_[pivot] = pos; }

  /// True when `pivot` is already registered (query bound needs no crack).
  bool HasPivot(int64_t pivot) const { return pivots_.count(pivot) > 0; }

  /// Position of the first element >= pivot; only valid if HasPivot().
  size_t PivotPosition(int64_t pivot) const { return pivots_.at(pivot); }

  /// The piece that would contain `value`.
  Piece FindPiece(int64_t value) const;

  /// Position of the first element >= `value` if derivable from pivots
  /// without cracking (i.e. value is a pivot), else nullopt.
  std::optional<size_t> LowerBoundPosition(int64_t value) const;

  size_t num_pieces() const { return pivots_.size() + 1; }
  size_t size() const { return size_; }

  /// Shifts by +1 the position of every pivot strictly greater than `pivot`
  /// (used by ripple insertion) and grows the logical size by one.
  void ShiftAfter(int64_t pivot);

  const std::map<int64_t, size_t>& pivots() const { return pivots_; }

  /// Structural well-formedness: pivot positions are within the column and
  /// monotonically non-decreasing in pivot order (pieces never overlap or
  /// invert). O(#pivots).
  Status Validate() const;

 private:
  size_t size_;
  std::map<int64_t, size_t> pivots_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_CRACKER_INDEX_H_
