#include "cracking/updates.h"

#include <atomic>
#include <mutex>

#include "common/metrics.h"

namespace exploredb {

namespace {

// Serving-layer concurrency counters, aggregated over every epoch cracker in
// the process: how often a query hit the converged shared-lock fast path vs
// had to serialize behind an exclusive crack-and-publish.
Counter* SharedReadsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_cracker_shared_reads_total",
      "Cracker range reads answered under the shared (epoch-pinned) lock");
  return c;
}

Counter* EpochsPublishedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_cracker_epochs_published_total",
      "Cracking reorganizations that published a new piece-layout epoch");
  return c;
}

}  // namespace

UpdatableCrackerColumn::UpdatableCrackerColumn(std::vector<int64_t> values,
                                               size_t merge_threshold)
    : column_(std::move(values)),
      next_row_id_(static_cast<uint32_t>(column_.size())),
      merge_threshold_(merge_threshold) {}

void UpdatableCrackerColumn::Insert(int64_t value) {
  pending_values_.push_back(value);
  pending_row_ids_.push_back(next_row_id_++);
  if (pending_values_.size() >= merge_threshold_) MergePending();
}

void UpdatableCrackerColumn::RippleInsert(int64_t value, uint32_t row_id) {
  // Grow the array by one slot at the end.
  column_.values_.push_back(0);
  column_.row_ids_.push_back(0);
  size_t hole = column_.values_.size() - 1;

  // Walk pieces from the back toward the target: every piece whose pivot is
  // strictly greater than `value` starts after the insertion point, so move
  // its first element into the hole (order within a piece is arbitrary),
  // which slides the hole to that piece's start. This mirrors exactly the
  // set of pivots ShiftAfter() will advance.
  const auto& pivots = column_.index_.pivots();
  for (auto it = pivots.rbegin(); it != pivots.rend() && it->first > value;
       ++it) {
    size_t piece_begin = it->second;
    column_.values_[hole] = column_.values_[piece_begin];
    column_.row_ids_[hole] = column_.row_ids_[piece_begin];
    hole = piece_begin;
  }

  column_.values_[hole] = value;
  column_.row_ids_[hole] = row_id;

  // Every pivot above the target piece now starts one position later.
  // FindPiece gave begin = position of greatest pivot <= value, so shift all
  // pivots strictly greater than `value`.
  column_.index_.ShiftAfter(value);
}

void UpdatableCrackerColumn::MergePending() {
  for (size_t i = 0; i < pending_values_.size(); ++i) {
    RippleInsert(pending_values_[i], pending_row_ids_[i]);
  }
  pending_values_.clear();
  pending_row_ids_.clear();
}

CrackRange UpdatableCrackerColumn::RangeSelect(
    int64_t lo, int64_t hi, std::vector<uint32_t>* extra_row_ids) {
  for (size_t i = 0; i < pending_values_.size(); ++i) {
    if (pending_values_[i] >= lo && pending_values_[i] < hi) {
      extra_row_ids->push_back(pending_row_ids_[i]);
    }
  }
  return column_.RangeSelect(lo, hi);
}

size_t UpdatableCrackerColumn::RangeCount(int64_t lo, int64_t hi) {
  std::vector<uint32_t> extra;
  CrackRange range = RangeSelect(lo, hi, &extra);
  return range.count() + extra.size();
}

size_t ConcurrentCrackerColumn::RangeCount(int64_t lo, int64_t hi) {
  {
    ReaderMutexLock lock(mutex_);
    if (column_.CanAnswerWithoutCracking(lo, hi)) {
      read_only_queries_.fetch_add(1, std::memory_order_relaxed);
      // Sound under a shared lock: both bounds are pivots, so RangeSelect
      // degenerates to two index lookups and mutates nothing.
      CrackRange r = column_.RangeSelect(lo, hi);
      return r.count();
    }
  }
  WriterMutexLock lock(mutex_);
  CrackRange r = column_.RangeSelect(lo, hi);
  return r.count();
}

EpochCrackerColumn::EpochCrackerColumn(std::vector<int64_t> values)
    : column_(std::move(values)), size_(column_.size()) {}

EpochCrackerColumn::ReadStats EpochCrackerColumn::RangeSelectInto(
    int64_t lo, int64_t hi, std::vector<uint32_t>* out) {
  ReadStats rs;
  {
    ReaderMutexLock lock(mutex_);
    if (column_.CanAnswerWithoutCracking(lo, hi)) {
      shared_reads_.fetch_add(1, std::memory_order_relaxed);
      SharedReadsCounter()->Add();
      // Sound under a shared lock: both bounds are pivots, so RangeSelect
      // degenerates to two index lookups and mutates nothing.
      CrackRange r = column_.RangeSelect(lo, hi);
      out->insert(out->end(), column_.row_ids().begin() + r.begin,
                  column_.row_ids().begin() + r.end);
      rs.rows_touched = r.count();
      rs.epoch = epoch_.load(std::memory_order_relaxed);
      rs.shared_path = true;
      return rs;
    }
  }
  WriterMutexLock lock(mutex_);
  // Re-check under the exclusive lock: another thread may have cracked the
  // same bounds in the unlock->lock window, in which case this read is free.
  const uint64_t cracks_before = column_.stats().cracks;
  const uint64_t touched_before = column_.stats().elements_touched;
  CrackRange r = column_.RangeSelect(lo, hi);
  rs.rows_touched = static_cast<size_t>(column_.stats().elements_touched -
                                        touched_before) +
                    r.count();
  if (column_.stats().cracks != cracks_before) {
    exclusive_cracks_.fetch_add(1, std::memory_order_relaxed);
    EpochsPublishedCounter()->Add();
    // Publish: the new piece layout becomes the current epoch before any
    // reader can take the lock shared again.
    rs.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  } else {
    rs.epoch = epoch_.load(std::memory_order_relaxed);
  }
  out->insert(out->end(), column_.row_ids().begin() + r.begin,
              column_.row_ids().begin() + r.end);
  return rs;
}

CrackingStats EpochCrackerColumn::stats() const {
  ReaderMutexLock lock(mutex_);
  return column_.stats();
}

Status EpochCrackerColumn::Validate(
    const std::vector<int64_t>* original) const {
  ReaderMutexLock lock(mutex_);
  return column_.Validate(original);
}

}  // namespace exploredb
