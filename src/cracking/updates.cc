#include "cracking/updates.h"

#include <atomic>
#include <mutex>

namespace exploredb {

UpdatableCrackerColumn::UpdatableCrackerColumn(std::vector<int64_t> values,
                                               size_t merge_threshold)
    : column_(std::move(values)),
      next_row_id_(static_cast<uint32_t>(column_.size())),
      merge_threshold_(merge_threshold) {}

void UpdatableCrackerColumn::Insert(int64_t value) {
  pending_values_.push_back(value);
  pending_row_ids_.push_back(next_row_id_++);
  if (pending_values_.size() >= merge_threshold_) MergePending();
}

void UpdatableCrackerColumn::RippleInsert(int64_t value, uint32_t row_id) {
  // Grow the array by one slot at the end.
  column_.values_.push_back(0);
  column_.row_ids_.push_back(0);
  size_t hole = column_.values_.size() - 1;

  // Walk pieces from the back toward the target: every piece whose pivot is
  // strictly greater than `value` starts after the insertion point, so move
  // its first element into the hole (order within a piece is arbitrary),
  // which slides the hole to that piece's start. This mirrors exactly the
  // set of pivots ShiftAfter() will advance.
  const auto& pivots = column_.index_.pivots();
  for (auto it = pivots.rbegin(); it != pivots.rend() && it->first > value;
       ++it) {
    size_t piece_begin = it->second;
    column_.values_[hole] = column_.values_[piece_begin];
    column_.row_ids_[hole] = column_.row_ids_[piece_begin];
    hole = piece_begin;
  }

  column_.values_[hole] = value;
  column_.row_ids_[hole] = row_id;

  // Every pivot above the target piece now starts one position later.
  // FindPiece gave begin = position of greatest pivot <= value, so shift all
  // pivots strictly greater than `value`.
  column_.index_.ShiftAfter(value);
}

void UpdatableCrackerColumn::MergePending() {
  for (size_t i = 0; i < pending_values_.size(); ++i) {
    RippleInsert(pending_values_[i], pending_row_ids_[i]);
  }
  pending_values_.clear();
  pending_row_ids_.clear();
}

CrackRange UpdatableCrackerColumn::RangeSelect(
    int64_t lo, int64_t hi, std::vector<uint32_t>* extra_row_ids) {
  for (size_t i = 0; i < pending_values_.size(); ++i) {
    if (pending_values_[i] >= lo && pending_values_[i] < hi) {
      extra_row_ids->push_back(pending_row_ids_[i]);
    }
  }
  return column_.RangeSelect(lo, hi);
}

size_t UpdatableCrackerColumn::RangeCount(int64_t lo, int64_t hi) {
  std::vector<uint32_t> extra;
  CrackRange range = RangeSelect(lo, hi, &extra);
  return range.count() + extra.size();
}

size_t ConcurrentCrackerColumn::RangeCount(int64_t lo, int64_t hi) {
  {
    ReaderMutexLock lock(mutex_);
    if (column_.CanAnswerWithoutCracking(lo, hi)) {
      read_only_queries_.fetch_add(1, std::memory_order_relaxed);
      // Sound under a shared lock: both bounds are pivots, so RangeSelect
      // degenerates to two index lookups and mutates nothing.
      CrackRange r = column_.RangeSelect(lo, hi);
      return r.count();
    }
  }
  WriterMutexLock lock(mutex_);
  CrackRange r = column_.RangeSelect(lo, hi);
  return r.count();
}

}  // namespace exploredb
