#ifndef EXPLOREDB_CRACKING_BASELINES_H_
#define EXPLOREDB_CRACKING_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace exploredb {

/// Full-scan baseline: answers every range query by scanning the column.
/// Zero initialization cost, O(n) per query — the "no index" end of the
/// adaptive-indexing trade-off space.
class ScanSelector {
 public:
  explicit ScanSelector(std::vector<int64_t> values)
      : values_(std::move(values)) {}

  /// Row ids (original positions) of values in [lo, hi).
  std::vector<uint32_t> RangeSelect(int64_t lo, int64_t hi) const;

  /// Count of values in [lo, hi) without materializing positions.
  size_t RangeCount(int64_t lo, int64_t hi) const;

  const std::vector<int64_t>& values() const { return values_; }

 private:
  std::vector<int64_t> values_;
};

/// Fully sorted index baseline: pays the complete sort up front, then
/// answers queries with two binary searches — the "perfect index" end of the
/// trade-off space (what an offline tuning tool would build).
class SortedIndex {
 public:
  /// Sorts (value, row id) pairs; O(n log n) once.
  explicit SortedIndex(const std::vector<int64_t>& values);

  /// Row ids of values in [lo, hi).
  std::vector<uint32_t> RangeSelect(int64_t lo, int64_t hi) const;

  size_t RangeCount(int64_t lo, int64_t hi) const;

  const std::vector<int64_t>& sorted_values() const { return sorted_values_; }

 private:
  std::vector<int64_t> sorted_values_;
  std::vector<uint32_t> sorted_row_ids_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_BASELINES_H_
