#include "cracking/baselines.h"

#include <algorithm>
#include <numeric>

namespace exploredb {

std::vector<uint32_t> ScanSelector::RangeSelect(int64_t lo, int64_t hi) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] >= lo && values_[i] < hi) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

size_t ScanSelector::RangeCount(int64_t lo, int64_t hi) const {
  size_t count = 0;
  for (int64_t v : values_) {
    count += (v >= lo && v < hi);
  }
  return count;
}

SortedIndex::SortedIndex(const std::vector<int64_t>& values)
    : sorted_values_(values), sorted_row_ids_(values.size()) {
  std::iota(sorted_row_ids_.begin(), sorted_row_ids_.end(), 0);
  std::sort(sorted_row_ids_.begin(), sorted_row_ids_.end(),
            [&values](uint32_t a, uint32_t b) {
              return values[a] < values[b];
            });
  std::sort(sorted_values_.begin(), sorted_values_.end());
}

std::vector<uint32_t> SortedIndex::RangeSelect(int64_t lo, int64_t hi) const {
  auto b = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), lo);
  auto e = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), hi);
  return std::vector<uint32_t>(
      sorted_row_ids_.begin() + (b - sorted_values_.begin()),
      sorted_row_ids_.begin() + (e - sorted_values_.begin()));
}

size_t SortedIndex::RangeCount(int64_t lo, int64_t hi) const {
  auto b = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), lo);
  auto e = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), hi);
  return static_cast<size_t>(e - b);
}

}  // namespace exploredb
