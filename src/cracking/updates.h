#ifndef EXPLOREDB_CRACKING_UPDATES_H_
#define EXPLOREDB_CRACKING_UPDATES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "cracking/cracker_column.h"

namespace exploredb {

/// Cracked column that absorbs insertions, after "Updating a Cracked
/// Database" [Idreos et al., SIGMOD'07]. New values first land in a pending
/// buffer (queries merge it on the fly); once the buffer exceeds a threshold
/// the values are folded into the cracked array with *ripple insertion*:
/// grow the array by one, then shift one boundary element per piece so a slot
/// opens inside the target piece — O(#pieces) moves per insert instead of
/// O(n), exploiting the fact that order inside a piece is free.
class UpdatableCrackerColumn {
 public:
  explicit UpdatableCrackerColumn(std::vector<int64_t> values,
                                  size_t merge_threshold = 64);

  /// Queues `value` for insertion (assigned the next row id).
  void Insert(int64_t value);

  /// Selects lo <= v < hi. Matches from the pending buffer are appended to
  /// `extra_row_ids` (the cracked range covers only merged values).
  CrackRange RangeSelect(int64_t lo, int64_t hi,
                         std::vector<uint32_t>* extra_row_ids);

  /// Total values in [lo, hi) including pending ones.
  size_t RangeCount(int64_t lo, int64_t hi);

  /// Forces the pending buffer into the cracked array.
  void MergePending();

  size_t pending_size() const { return pending_values_.size(); }
  const CrackerColumn& column() const { return column_; }
  size_t size() const { return column_.size() + pending_values_.size(); }

 private:
  void RippleInsert(int64_t value, uint32_t row_id);

  CrackerColumn column_;
  std::vector<int64_t> pending_values_;
  std::vector<uint32_t> pending_row_ids_;
  uint32_t next_row_id_;
  size_t merge_threshold_;
};

/// Thread-safe wrapper exposing the read/write asymmetry of adaptive
/// indexing ("Concurrency Control for Adaptive Indexing" [Graefe et al.,
/// PVLDB'12]): a query whose bounds are already pivots is a pure read and
/// runs under a shared lock; a query that needs to crack mutates the array
/// and must serialize.
class ConcurrentCrackerColumn {
 public:
  explicit ConcurrentCrackerColumn(std::vector<int64_t> values)
      : column_(std::move(values)) {}

  /// Thread-safe range count of values in [lo, hi).
  size_t RangeCount(int64_t lo, int64_t hi) EXCLUDES(mutex_);

  /// Number of queries that were answered read-only (shared lock).
  uint64_t read_only_queries() const { return read_only_queries_; }

 private:
  SharedMutex mutex_;
  // Read-only answers take mutex_ shared; cracking takes it exclusive. The
  // RangeSelect on the shared path mutates nothing (both bounds are pivots).
  CrackerColumn column_ GUARDED_BY(mutex_);
  std::atomic<uint64_t> read_only_queries_{0};
};

/// The serving-layer generalization of ConcurrentCrackerColumn: an epoch-
/// published cracker that many sessions read concurrently while cracking
/// reorganizations publish new piece layouts one at a time.
///
/// Epoch protocol (DESIGN.md §2i):
///  - The piece layout has a monotonically increasing *epoch* number. Readers
///    pin the current epoch by holding the shared lock: while any reader is
///    inside, the layout cannot change underneath it.
///  - A query whose bounds are already pivots is answered entirely under the
///    shared lock (RangeSelect degenerates to two index lookups and mutates
///    nothing — the ConcurrentCrackerColumn invariant), so converged point
///    lookups never block each other and never block behind long readers.
///  - A query that must crack takes the lock exclusive, re-checks (another
///    thread may have cracked the same bounds in the unlock->lock window),
///    reorganizes, and *publishes* epoch+1 before downgrading to copying its
///    answer. Cracking serializes; reads of converged regions do not.
class EpochCrackerColumn {
 public:
  /// Per-read provenance: what the caller's ExecStats accounting needs.
  struct ReadStats {
    /// Elements moved while cracking plus the answer range size — the same
    /// accounting Executor historically derived from CrackingStats deltas
    /// (which are racy to read across threads; this is the per-call copy).
    size_t rows_touched = 0;
    uint64_t epoch = 0;        ///< piece-layout epoch the answer came from
    bool shared_path = false;  ///< answered read-only under the shared lock
  };

  explicit EpochCrackerColumn(std::vector<int64_t> values);

  /// Appends the row ids of values in [lo, hi) to `out` (in cracked-array
  /// order — callers needing determinism sort, as the executor always has).
  ReadStats RangeSelectInto(int64_t lo, int64_t hi,
                            std::vector<uint32_t>* out) EXCLUDES(mutex_);

  /// Current published epoch (number of cracking reorganizations so far).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Reads answered under the shared lock / cracks that published an epoch.
  uint64_t shared_reads() const {
    return shared_reads_.load(std::memory_order_relaxed);
  }
  uint64_t exclusive_cracks() const {
    return exclusive_cracks_.load(std::memory_order_relaxed);
  }

  size_t size() const { return size_; }

  /// Snapshot of the underlying cracker's counters (taken under the lock).
  CrackingStats stats() const EXCLUDES(mutex_);

  /// Deep validation of the cracked array (see CrackerColumn::Validate),
  /// taken under the shared lock so it can run while readers are active.
  Status Validate(const std::vector<int64_t>* original = nullptr) const
      EXCLUDES(mutex_);

 private:
  mutable SharedMutex mutex_;
  CrackerColumn column_ GUARDED_BY(mutex_);
  const size_t size_;  ///< row count; immutable (no inserts through this API)
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> shared_reads_{0};
  std::atomic<uint64_t> exclusive_cracks_{0};
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_UPDATES_H_
