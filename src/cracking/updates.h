#ifndef EXPLOREDB_CRACKING_UPDATES_H_
#define EXPLOREDB_CRACKING_UPDATES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "cracking/cracker_column.h"

namespace exploredb {

/// Cracked column that absorbs insertions, after "Updating a Cracked
/// Database" [Idreos et al., SIGMOD'07]. New values first land in a pending
/// buffer (queries merge it on the fly); once the buffer exceeds a threshold
/// the values are folded into the cracked array with *ripple insertion*:
/// grow the array by one, then shift one boundary element per piece so a slot
/// opens inside the target piece — O(#pieces) moves per insert instead of
/// O(n), exploiting the fact that order inside a piece is free.
class UpdatableCrackerColumn {
 public:
  explicit UpdatableCrackerColumn(std::vector<int64_t> values,
                                  size_t merge_threshold = 64);

  /// Queues `value` for insertion (assigned the next row id).
  void Insert(int64_t value);

  /// Selects lo <= v < hi. Matches from the pending buffer are appended to
  /// `extra_row_ids` (the cracked range covers only merged values).
  CrackRange RangeSelect(int64_t lo, int64_t hi,
                         std::vector<uint32_t>* extra_row_ids);

  /// Total values in [lo, hi) including pending ones.
  size_t RangeCount(int64_t lo, int64_t hi);

  /// Forces the pending buffer into the cracked array.
  void MergePending();

  size_t pending_size() const { return pending_values_.size(); }
  const CrackerColumn& column() const { return column_; }
  size_t size() const { return column_.size() + pending_values_.size(); }

 private:
  void RippleInsert(int64_t value, uint32_t row_id);

  CrackerColumn column_;
  std::vector<int64_t> pending_values_;
  std::vector<uint32_t> pending_row_ids_;
  uint32_t next_row_id_;
  size_t merge_threshold_;
};

/// Thread-safe wrapper exposing the read/write asymmetry of adaptive
/// indexing ("Concurrency Control for Adaptive Indexing" [Graefe et al.,
/// PVLDB'12]): a query whose bounds are already pivots is a pure read and
/// runs under a shared lock; a query that needs to crack mutates the array
/// and must serialize.
class ConcurrentCrackerColumn {
 public:
  explicit ConcurrentCrackerColumn(std::vector<int64_t> values)
      : column_(std::move(values)) {}

  /// Thread-safe range count of values in [lo, hi).
  size_t RangeCount(int64_t lo, int64_t hi) EXCLUDES(mutex_);

  /// Number of queries that were answered read-only (shared lock).
  uint64_t read_only_queries() const { return read_only_queries_; }

 private:
  SharedMutex mutex_;
  // Read-only answers take mutex_ shared; cracking takes it exclusive. The
  // RangeSelect on the shared path mutates nothing (both bounds are pivots).
  CrackerColumn column_ GUARDED_BY(mutex_);
  std::atomic<uint64_t> read_only_queries_{0};
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_UPDATES_H_
