#include "cracking/stochastic.h"

#include <algorithm>

namespace exploredb {

const char* CrackPolicyName(CrackPolicy policy) {
  switch (policy) {
    case CrackPolicy::kBasic:
      return "basic";
    case CrackPolicy::kDD1R:
      return "DD1R";
    case CrackPolicy::kDDC:
      return "DDC";
  }
  return "?";
}

StochasticCrackerColumn::StochasticCrackerColumn(std::vector<int64_t> values,
                                                 CrackPolicy policy,
                                                 uint64_t seed,
                                                 size_t min_piece_size)
    : column_(std::move(values)),
      policy_(policy),
      rng_(seed),
      min_piece_size_(min_piece_size) {}

void StochasticCrackerColumn::ShrinkPieceAround(int64_t bound) {
  if (policy_ == CrackPolicy::kBasic) return;
  // Repeatedly split the piece containing `bound` until it is small. DD1R
  // performs one random cut per call; DDC recurses on value midpoints.
  int max_rounds = (policy_ == CrackPolicy::kDD1R) ? 1 : 64;
  for (int round = 0; round < max_rounds; ++round) {
    CrackerIndex::Piece piece = column_.index().FindPiece(bound);
    size_t len = piece.end - piece.begin;
    if (len <= min_piece_size_) return;
    int64_t pivot;
    if (policy_ == CrackPolicy::kDD1R) {
      // Pivot on the value of a random element of the piece, which is
      // guaranteed to split off at least one element.
      size_t pos = piece.begin + rng_.Uniform(len);
      pivot = column_.values()[pos];
    } else {
      // DDC: midpoint of the piece's value range.
      auto [mn_it, mx_it] =
          std::minmax_element(column_.values().begin() + piece.begin,
                              column_.values().begin() + piece.end);
      if (*mn_it == *mx_it) return;  // constant piece, nothing to split
      pivot = *mn_it + (*mx_it - *mn_it) / 2;
      if (pivot == *mn_it) pivot = *mx_it;  // guarantee progress
    }
    if (pivot == bound) return;  // the bound crack will handle it
    column_.CrackAt(pivot);
  }
}

CrackRange StochasticCrackerColumn::RangeSelect(int64_t lo, int64_t hi) {
  if (lo >= hi) return {0, 0};
  ShrinkPieceAround(lo);
  ShrinkPieceAround(hi);
  return column_.RangeSelect(lo, hi);
}

}  // namespace exploredb
