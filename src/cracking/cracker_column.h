#ifndef EXPLOREDB_CRACKING_CRACKER_COLUMN_H_
#define EXPLOREDB_CRACKING_CRACKER_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "cracking/cracker_index.h"

namespace exploredb {

/// Contiguous range of positions in the cracked array answering a range
/// query; values()/row_ids() in [begin, end) are exactly the matches.
struct CrackRange {
  size_t begin = 0;
  size_t end = 0;

  size_t count() const { return end - begin; }
};

/// Counters exposed for the adaptive-indexing experiments.
struct CrackingStats {
  uint64_t cracks = 0;          ///< crack-in-two operations performed
  uint64_t elements_touched = 0;  ///< elements moved/compared while cracking
};

/// A cracked copy of an int64 column: each range query physically reorganizes
/// the copy around its bounds so the index is built incrementally as a side
/// effect of query processing ("Database Cracking", Idreos/Kersten/Manegold).
///
/// The column keeps row identifiers aligned with values, so query answers can
/// be mapped back to the base table for late tuple reconstruction.
class CrackerColumn {
 public:
  /// Copies `values`; row id i refers to values[i] in the original order.
  explicit CrackerColumn(std::vector<int64_t> values);

  /// Selects lo <= v < hi, cracking the column on both bounds.
  /// The returned range indexes into values()/row_ids().
  CrackRange RangeSelect(int64_t lo, int64_t hi);

  /// Cracks at `pivot` and returns the position of the first value >= pivot.
  /// This is the primitive both RangeSelect and the stochastic variants use.
  size_t CrackAt(int64_t pivot);

  /// Cracks the piece containing `pivot` at the value of one of its own
  /// elements chosen by the caller (used by stochastic cracking). Returns the
  /// pivot position. No-op when the piece is empty.
  size_t CrackAtElementValue(int64_t element_value) {
    return CrackAt(element_value);
  }

  const std::vector<int64_t>& values() const { return values_; }
  const std::vector<uint32_t>& row_ids() const { return row_ids_; }
  const CrackerIndex& index() const { return index_; }
  const CrackingStats& stats() const { return stats_; }
  size_t size() const { return values_.size(); }

  /// True when both bounds are existing pivots, i.e. the query can be
  /// answered read-only. Used by the concurrency wrapper.
  bool CanAnswerWithoutCracking(int64_t lo, int64_t hi) const {
    return index_.HasPivot(lo) && index_.HasPivot(hi);
  }

  /// Deep well-formedness check, O(n + #pivots): the index validates, every
  /// piece's values lie inside its pivot interval, and row_ids() is a
  /// permutation of [0, n). When `original` is given (the base column in row
  /// id order), additionally checks values()[i] == (*original)[row_ids()[i]],
  /// i.e. cracking permuted but never corrupted the data. Run after every
  /// query under EXPLOREDB_VALIDATE=1.
  Status Validate(const std::vector<int64_t>* original = nullptr) const;

 protected:
  friend class UpdatableCrackerColumn;

  /// Partitions [piece.begin, piece.end) around `pivot` (values < pivot to
  /// the front, >= pivot to the back), registers the pivot, and returns the
  /// split position.
  size_t CrackPiece(const CrackerIndex::Piece& piece, int64_t pivot);

  std::vector<int64_t> values_;
  std::vector<uint32_t> row_ids_;
  CrackerIndex index_;
  CrackingStats stats_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_CRACKER_COLUMN_H_
