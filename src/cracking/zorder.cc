#include "cracking/zorder.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace exploredb {

namespace {

/// Spreads the low 31 bits of v to the even bit positions.
uint64_t Part1By1(uint32_t v) {
  uint64_t x = v & 0x7fffffffULL;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t Compact1By1(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

struct Rect {
  uint32_t x0, y0, x1, y1;  // half-open
};

/// Recursive quadrant cover: emits z-ranges of Morton-aligned squares. A
/// square either fully inside the rectangle or at the resolution floor is
/// emitted whole (the latter conservatively, post-filtered later).
void Cover(uint32_t x, uint32_t y, uint64_t size, const Rect& r,
           uint64_t min_size,
           std::vector<std::pair<int64_t, int64_t>>* out) {
  // Disjoint?
  if (x >= r.x1 || y >= r.y1 || x + size <= r.x0 || y + size <= r.y0) {
    return;
  }
  bool fully_inside = x >= r.x0 && y >= r.y0 && x + size <= r.x1 &&
                      y + size <= r.y1;
  if (fully_inside || size <= min_size) {
    int64_t z0 = MortonEncode(x, y);
    out->push_back({z0, z0 + static_cast<int64_t>(size * size)});
    return;
  }
  uint64_t h = size / 2;
  // Children in Z order (y owns the more significant interleaved bit).
  Cover(x, y, h, r, min_size, out);
  Cover(x + static_cast<uint32_t>(h), y, h, r, min_size, out);
  Cover(x, y + static_cast<uint32_t>(h), h, r, min_size, out);
  Cover(x + static_cast<uint32_t>(h), y + static_cast<uint32_t>(h), h, r,
        min_size, out);
}

}  // namespace

int64_t MortonEncode(uint32_t x, uint32_t y) {
  return static_cast<int64_t>(Part1By1(x) | (Part1By1(y) << 1));
}

void MortonDecode(int64_t z, uint32_t* x, uint32_t* y) {
  uint64_t u = static_cast<uint64_t>(z);
  *x = Compact1By1(u);
  *y = Compact1By1(u >> 1);
}

std::vector<std::pair<int64_t, int64_t>> MortonRanges(uint32_t x0, uint32_t y0,
                                                      uint32_t x1, uint32_t y1,
                                                      size_t max_ranges) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (x1 <= x0 || y1 <= y0 || max_ranges == 0) return out;
  Rect r{x0, y0, x1, y1};
  // Resolution floor sized so the boundary-node count respects the budget
  // (boundary cells ~ 4 * extent / min_size).
  uint64_t extent = std::max(x1 - x0, y1 - y0);
  uint64_t min_size = 1;
  while (min_size * max_ranges < extent * 4) min_size <<= 1;
  Cover(0, 0, uint64_t{1} << 31, r, min_size, &out);
  std::sort(out.begin(), out.end());
  // Merge adjacent/overlapping ranges.
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (const auto& range : out) {
    if (!merged.empty() && range.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, range.second);
    } else {
      merged.push_back(range);
    }
  }
  // Enforce the budget by closing the smallest gaps (adds false positives,
  // never misses).
  while (merged.size() > max_ranges) {
    size_t best = 1;
    int64_t best_gap = merged[1].first - merged[0].second;
    for (size_t i = 2; i < merged.size(); ++i) {
      int64_t gap = merged[i].first - merged[i - 1].second;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    merged[best - 1].second = merged[best].second;
    merged.erase(merged.begin() + best);
  }
  return merged;
}

Result<ZOrderCrackerIndex> ZOrderCrackerIndex::Build(
    const std::vector<uint32_t>& x, const std::vector<uint32_t>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("x/y must be equal-length and non-empty");
  }
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0x7fffffffu || y[i] > 0x7fffffffu) {
      return Status::OutOfRange("coordinates must be < 2^31");
    }
  }
  ZOrderCrackerIndex index;
  index.xs_ = x;
  index.ys_ = y;
  std::vector<int64_t> keys(x.size());
  for (size_t i = 0; i < x.size(); ++i) keys[i] = MortonEncode(x[i], y[i]);
  index.cracker_ = std::make_unique<CrackerColumn>(std::move(keys));
  return index;
}

std::vector<uint32_t> ZOrderCrackerIndex::WindowQuery(uint32_t x0, uint32_t y0,
                                                      uint32_t x1, uint32_t y1,
                                                      size_t max_ranges) {
  std::vector<uint32_t> out;
  last_candidates_ = 0;
  for (const auto& [lo, hi] : MortonRanges(x0, y0, x1, y1, max_ranges)) {
    CrackRange range = cracker_->RangeSelect(lo, hi);
    last_candidates_ += range.count();
    for (size_t i = range.begin; i < range.end; ++i) {
      uint32_t id = cracker_->row_ids()[i];
      if (xs_[id] >= x0 && xs_[id] < x1 && ys_[id] >= y0 && ys_[id] < y1) {
        out.push_back(id);
      }
    }
  }
  return out;
}

std::vector<uint32_t> ZOrderCrackerIndex::WindowQueryScan(
    uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] >= x0 && xs_[i] < x1 && ys_[i] >= y0 && ys_[i] < y1) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace exploredb
