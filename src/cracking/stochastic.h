#ifndef EXPLOREDB_CRACKING_STOCHASTIC_H_
#define EXPLOREDB_CRACKING_STOCHASTIC_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "cracking/cracker_column.h"

namespace exploredb {

/// Auxiliary cracking policies from "Stochastic Database Cracking" [Halim et
/// al., PVLDB'12]. Basic cracking degenerates to quadratic behaviour under
/// sequential workloads because every query shaves a sliver off one huge
/// unsorted piece; the stochastic variants invest extra random or centered
/// cracks so piece sizes shrink geometrically regardless of the workload.
enum class CrackPolicy {
  kBasic,  ///< crack only at the query bounds (original cracking)
  kDD1R,   ///< one random-element crack in the touched piece per bound
  kDDC,    ///< recursively crack at the piece's value midpoint until small
};

const char* CrackPolicyName(CrackPolicy policy);

/// CrackerColumn with a pluggable auxiliary-crack policy.
class StochasticCrackerColumn {
 public:
  StochasticCrackerColumn(std::vector<int64_t> values, CrackPolicy policy,
                          uint64_t seed = 42,
                          size_t min_piece_size = 1 << 10);

  /// Selects lo <= v < hi, applying the policy's auxiliary cracks before
  /// cracking at the bounds.
  CrackRange RangeSelect(int64_t lo, int64_t hi);

  const CrackerColumn& column() const { return column_; }
  CrackPolicy policy() const { return policy_; }

 private:
  /// Shrinks the piece that contains `bound` according to the policy.
  void ShrinkPieceAround(int64_t bound);

  CrackerColumn column_;
  CrackPolicy policy_;
  Random rng_;
  size_t min_piece_size_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_CRACKING_STOCHASTIC_H_
