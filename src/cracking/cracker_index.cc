#include "cracking/cracker_index.h"

namespace exploredb {

CrackerIndex::Piece CrackerIndex::FindPiece(int64_t value) const {
  // upper_bound: first pivot > value. The piece containing `value` starts at
  // the position of the greatest pivot <= value and ends at the position of
  // the first pivot > value.
  size_t begin = 0;
  size_t end = size_;
  auto it = pivots_.upper_bound(value);
  if (it != pivots_.end()) end = it->second;
  if (it != pivots_.begin()) {
    --it;
    begin = it->second;
  }
  return {begin, end};
}

std::optional<size_t> CrackerIndex::LowerBoundPosition(int64_t value) const {
  auto it = pivots_.find(value);
  if (it == pivots_.end()) return std::nullopt;
  return it->second;
}

Status CrackerIndex::Validate() const {
  size_t prev_pos = 0;
  for (const auto& [pivot, pos] : pivots_) {
    if (pos > size_) {
      return Status::Internal("cracker index: pivot " + std::to_string(pivot) +
                              " at position " + std::to_string(pos) +
                              " past the column end " + std::to_string(size_));
    }
    // std::map iterates pivots in value order, so positions must follow.
    if (pos < prev_pos) {
      return Status::Internal("cracker index: pivot " + std::to_string(pivot) +
                              " at position " + std::to_string(pos) +
                              " inverts the preceding piece boundary " +
                              std::to_string(prev_pos));
    }
    prev_pos = pos;
  }
  return Status::OK();
}

void CrackerIndex::ShiftAfter(int64_t pivot) {
  for (auto it = pivots_.upper_bound(pivot); it != pivots_.end(); ++it) {
    ++it->second;
  }
  ++size_;
}

}  // namespace exploredb
