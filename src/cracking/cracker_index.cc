#include "cracking/cracker_index.h"

namespace exploredb {

CrackerIndex::Piece CrackerIndex::FindPiece(int64_t value) const {
  // upper_bound: first pivot > value. The piece containing `value` starts at
  // the position of the greatest pivot <= value and ends at the position of
  // the first pivot > value.
  size_t begin = 0;
  size_t end = size_;
  auto it = pivots_.upper_bound(value);
  if (it != pivots_.end()) end = it->second;
  if (it != pivots_.begin()) {
    --it;
    begin = it->second;
  }
  return {begin, end};
}

std::optional<size_t> CrackerIndex::LowerBoundPosition(int64_t value) const {
  auto it = pivots_.find(value);
  if (it == pivots_.end()) return std::nullopt;
  return it->second;
}

void CrackerIndex::ShiftAfter(int64_t pivot) {
  for (auto it = pivots_.upper_bound(pivot); it != pivots_.end(); ++it) {
    ++it->second;
  }
  ++size_;
}

}  // namespace exploredb
