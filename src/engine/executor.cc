#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "engine/group_by.h"
#include "engine/planner.h"
#include "sampling/sampler.h"
#include "simd/simd.h"
#include "storage/zone_map.h"

namespace exploredb {

namespace {

// Engine-level metrics, resolved once. Counters are thread-sharded relaxed
// adds; the histogram powers the p50/p95/p99 query-latency panels.
Counter* QueriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_queries_total", "Queries executed by the engine");
  return c;
}

Histogram* QueryLatencyHistogram() {
  static Histogram* h = [] {
    Histogram* hist = Metrics().GetHistogram(
        "exploredb_query_latency_seconds", {},
        "End-to-end query latency (recorded in ns, exposed in seconds)");
    Metrics().SetScale("exploredb_query_latency_seconds", 1e-9);
    return hist;
  }();
  return h;
}

Counter* RowsScannedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_rows_scanned_total", "Row visits across all query phases");
  return c;
}

Counter* MorselsDispatchedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_morsels_dispatched_total",
      "Parallel work units issued by the executor");
  return c;
}

Counter* ZoneMapCheckedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_zonemap_morsels_checked_total",
      "Morsels tested against zone-map bounds");
  return c;
}

Counter* ZoneMapPrunedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_zonemap_morsels_pruned_total",
      "Morsels skipped because no zone overlapping them can match");
  return c;
}

/// Per-path query counters: which kernel table (scalar/SSE4.2/AVX2) actually
/// served production queries. A deploy that silently loses its AVX2 path —
/// wrong container base image, EXPLOREDB_SIMD left over from a debug session
/// — shows up here as the scalar counter climbing.
Counter* SimdPathCounter(simd::SimdPath path) {
  static Counter* scalar = Metrics().GetCounter(
      "exploredb_simd_path_scalar_queries_total",
      "Queries served by the scalar kernel table");
  static Counter* sse42 = Metrics().GetCounter(
      "exploredb_simd_path_sse42_queries_total",
      "Queries served by the SSE4.2 kernel table");
  static Counter* avx2 = Metrics().GetCounter(
      "exploredb_simd_path_avx2_queries_total",
      "Queries served by the AVX2 kernel table");
  switch (path) {
    case simd::SimdPath::kSse42:
      return sse42;
    case simd::SimdPath::kAvx2:
      return avx2;
    case simd::SimdPath::kScalar:
      break;
  }
  return scalar;
}

/// Folds one query's ExecStats into the process-wide registry; called once
/// per successful Execute.
void RecordQueryMetrics(const ExecStats& stats) {
  QueriesCounter()->Add();
  QueryLatencyHistogram()->Record(stats.total_nanos);
  RowsScannedCounter()->Add(stats.rows_scanned);
  MorselsDispatchedCounter()->Add(stats.morsels_dispatched);
  SimdPathCounter(stats.simd_path)->Add();
}

/// Evaluates `conditions` on one row, columns supplied in parallel order.
bool MatchesAll(const std::vector<Condition>& conditions,
                const std::vector<const ColumnVector*>& cols, size_t row) {
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (!conditions[i].MatchesColumn(*cols[i], row)) return false;
  }
  return true;
}

/// Fetches the column each condition references.
Result<std::vector<const ColumnVector*>> FetchConditionColumns(
    TableEntry* entry, const std::vector<Condition>& conditions) {
  std::vector<const ColumnVector*> cols;
  cols.reserve(conditions.size());
  for (const Condition& c : conditions) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                               entry->GetColumn(c.column));
    cols.push_back(col);
  }
  return cols;
}

/// Per-condition scan inputs: the raw column (always) and, when compression
/// is enabled and the condition is one the compressed representation can
/// serve, the column's CompressedColumn. `comp` is parallel to `cols`;
/// nullptr entries fall back to the raw kernels.
struct CondInputs {
  std::vector<const ColumnVector*> cols;
  std::vector<const CompressedColumn*> comp;
  bool any_compressed = false;
};

/// Fetches raw columns plus compressed representations. A condition is
/// compressed-servable when it is an int64 comparison against an int64
/// constant (FOR/RLE filters) or a string (in)equality (dictionary codes);
/// anything else — double columns, widened double constants, string ordering
/// — keeps comp null and runs raw.
Result<CondInputs> FetchCondInputs(TableEntry* entry,
                                   const std::vector<Condition>& conds,
                                   const ExecContext& ctx) {
  CondInputs in;
  EXPLOREDB_ASSIGN_OR_RETURN(in.cols, FetchConditionColumns(entry, conds));
  in.comp.assign(conds.size(), nullptr);
  if (!ctx.options().use_compression) return in;
  for (size_t i = 0; i < conds.size(); ++i) {
    const Condition& c = conds[i];
    const bool int64_cmp =
        in.cols[i]->type() == DataType::kInt64 && c.constant.is_int64();
    const bool string_eq =
        in.cols[i]->type() == DataType::kString && c.constant.is_string() &&
        (c.op == CompareOp::kEq || c.op == CompareOp::kNe);
    if (!int64_cmp && !string_eq) continue;
    EXPLOREDB_ASSIGN_OR_RETURN(const CompressedColumn* cc,
                               entry->GetCompressed(c.column));
    if (cc == nullptr || !cc->scan_enabled()) continue;
    if (int64_cmp && cc->i64() == nullptr) continue;
    if (string_eq && cc->str() == nullptr) continue;
    in.comp[i] = cc;
    in.any_compressed = true;
  }
  return in;
}

/// `v op k` on a decoded int64 — the same comparison the raw scan kernels
/// perform, applied to values gathered out of compressed blocks.
bool MatchesI64(int64_t v, CompareOp op, int64_t k) {
  switch (op) {
    case CompareOp::kLt:
      return v < k;
    case CompareOp::kLe:
      return v <= k;
    case CompareOp::kGt:
      return v > k;
    case CompareOp::kGe:
      return v >= k;
    case CompareOp::kEq:
      return v == k;
    case CompareOp::kNe:
      return v != k;
  }
  return false;
}

/// Reusable per-thread decode buffer for values gathered out of compressed
/// blocks (refinement and measure aggregation).
std::vector<int64_t>& MorselValueScratch() {
  thread_local std::vector<int64_t> scratch;
  return scratch;
}

/// Thread-local identity selection vector 0..n-1, grown on demand. Reducing
/// gathered (densely packed) values through sum_*_sel with an iota selection
/// walks them in the same striped accumulation order as a raw-column
/// selection of equal length, which is what keeps compressed aggregates
/// bit-identical to raw ones.
const std::vector<uint32_t>& IotaScratch(uint32_t n) {
  thread_local std::vector<uint32_t> iota;
  while (iota.size() < n) {
    iota.push_back(static_cast<uint32_t>(iota.size()));
  }
  return iota;
}

/// Morsel filter over mixed raw/compressed condition inputs. Seeds the
/// selection vector from a compressed conjunct — predicates run on packed
/// FOR words, RLE run headers, or dictionary codes, so rows of
/// non-qualifying blocks are never decoded — then refines survivors with the
/// remaining conjuncts: compressed int64 conjuncts gather just the surviving
/// rows (128-row sub-block decode, timed as "decompress"), string conjuncts
/// compare dictionary codes, everything else tests the raw column row by
/// row. Appends exactly the rows Predicate::FilterRange would, in the same
/// ascending order.
void FilterRangeMixed(const std::vector<Condition>& conds,
                      const CondInputs& in, uint32_t begin, uint32_t end,
                      bool tracing, int64_t* decompress_nanos,
                      std::vector<uint32_t>* out) {
  const size_t base = out->size();
  size_t seed = conds.size();

  // The exploration-window idiom lo <= col < hi collapses into one
  // compressed range filter (both conjuncts consumed by the seed).
  bool fused = false;
  if (conds.size() == 2 && in.comp[0] != nullptr && in.comp[0] == in.comp[1] &&
      in.comp[0]->i64() != nullptr) {
    const Condition* ge = nullptr;
    const Condition* lt = nullptr;
    for (const Condition& c : conds) {
      if (c.op == CompareOp::kGe) ge = &c;
      if (c.op == CompareOp::kLt) lt = &c;
    }
    if (ge != nullptr && lt != nullptr) {
      in.comp[0]->i64()->FilterRange(begin, end, ge->constant.int64(),
                                     lt->constant.int64(), out);
      fused = true;
    }
  }

  if (!fused) {
    for (size_t i = 0; i < conds.size(); ++i) {
      if (in.comp[i] != nullptr) {
        seed = i;
        break;
      }
    }
    const CompressedColumn* cc = in.comp[seed];
    if (cc->i64() != nullptr) {
      cc->i64()->FilterCmp(begin, end, conds[seed].op,
                           conds[seed].constant.int64(), out);
    } else {
      const CompressedStringColumn* sc = cc->str();
      const bool negate = conds[seed].op == CompareOp::kNe;
      std::optional<uint32_t> code = sc->CodeOf(conds[seed].constant.str());
      if (!code.has_value()) {
        // A constant absent from the dictionary: == matches nothing,
        // != matches every row.
        if (negate) {
          for (uint32_t r = begin; r < end; ++r) out->push_back(r);
        }
      } else {
        sc->FilterEqCode(begin, end, *code, negate, out);
      }
    }
  }

  // Refine survivors with every conjunct the seed did not consume.
  for (size_t j = 0; j < conds.size(); ++j) {
    if (fused || j == seed) {
      continue;
    }
    uint32_t* sel = out->data() + base;
    const auto cnt = static_cast<uint32_t>(out->size() - base);
    if (cnt == 0) return;
    size_t kept = 0;
    const CompressedColumn* cc = in.comp[j];
    if (cc != nullptr && cc->i64() != nullptr) {
      std::vector<int64_t>& vals = MorselValueScratch();
      vals.resize(cnt);
      {
        TraceSpan dspan("decompress", tracing, decompress_nanos);
        cc->i64()->Gather(sel, cnt, vals.data());
      }
      const int64_t k = conds[j].constant.int64();
      for (uint32_t i = 0; i < cnt; ++i) {
        if (MatchesI64(vals[i], conds[j].op, k)) sel[kept++] = sel[i];
      }
    } else if (cc != nullptr && cc->str() != nullptr) {
      const std::vector<uint32_t>& codes = cc->str()->dict().codes;
      const bool negate = conds[j].op == CompareOp::kNe;
      std::optional<uint32_t> code = cc->str()->CodeOf(conds[j].constant.str());
      if (!code.has_value()) {
        kept = negate ? cnt : 0;
      } else {
        for (uint32_t i = 0; i < cnt; ++i) {
          if ((codes[sel[i]] == *code) != negate) sel[kept++] = sel[i];
        }
      }
    } else {
      for (uint32_t i = 0; i < cnt; ++i) {
        if (conds[j].MatchesColumn(*in.cols[j], sel[i])) sel[kept++] = sel[i];
      }
    }
    out->resize(base + kept);
  }
}

/// The error a query stopped by its ExecContext reports.
Status InterruptedStatus(const ExecContext& ctx) {
  return ctx.cancelled() ? Status::Cancelled("query cancelled")
                         : Status::DeadlineExceeded("query deadline exceeded");
}

size_t MorselCount(size_t n, size_t morsel) { return (n + morsel - 1) / morsel; }

/// Reusable per-thread selection-vector buffer for morsel kernels. Cleared
/// (never shrunk) between morsels, so a steady-state scan allocates only on
/// its first morsel per worker.
std::vector<uint32_t>& MorselScratch() {
  thread_local std::vector<uint32_t> scratch;
  return scratch;
}

/// Zone-map plan for one scan: the morsels that survive pruning (in morsel
/// order — the merge contract depends on it), prune accounting, and the
/// predicate's estimated selectivity under the zone maps' uniform-within-zone
/// model. The estimate pre-sizes selection vectors; it is never a
/// correctness input.
struct MorselPlan {
  std::vector<size_t> live;
  size_t num_morsels = 0;
  size_t pruned = 0;
  size_t rows_pruned = 0;
  double selectivity = 1.0;
};

Result<MorselPlan> PlanMorsels(TableEntry* entry,
                               const std::vector<Condition>& conds,
                               const CondInputs& in, size_t n, size_t morsel,
                               const ExecContext& ctx) {
  MorselPlan plan;
  plan.num_morsels = MorselCount(n, morsel);

  // Zone-map pruning: every numeric conjunct gets the column's min/max
  // synopsis (built lazily, cached on the entry), and a morsel is skipped
  // outright when some conjunct cannot match any zone it overlaps.
  struct Pruner {
    const ZoneMap* zm;
    const Condition* c;
    const CompressedInt64Column* comp;  // sharper selectivity when non-null
  };
  std::vector<Pruner> pruners;
  if (ctx.options().use_zone_maps) {
    for (size_t i = 0; i < conds.size(); ++i) {
      if (in.cols[i]->type() == DataType::kString) continue;
      if (conds[i].constant.is_string()) continue;
      EXPLOREDB_ASSIGN_OR_RETURN(const ZoneMap* zm,
                                 entry->GetZoneMap(conds[i].column));
      pruners.push_back(
          {zm, &conds[i],
           in.comp[i] != nullptr ? in.comp[i]->i64() : nullptr});
    }
  }
  std::vector<uint8_t> skip(plan.num_morsels, 0);
  if (!pruners.empty()) {
    for (size_t m = 0; m < plan.num_morsels; ++m) {
      const uint32_t begin = static_cast<uint32_t>(m * morsel);
      const uint32_t end =
          static_cast<uint32_t>(std::min(n, m * morsel + morsel));
      for (const Pruner& p : pruners) {
        if (!p.zm->MayMatch(*p.c, begin, end)) {
          skip[m] = 1;
          ++plan.pruned;
          plan.rows_pruned += end - begin;
          break;
        }
      }
    }
    ZoneMapCheckedCounter()->Add(plan.num_morsels);
    ZoneMapPrunedCounter()->Add(plan.pruned);
  }
  // Independence across conjuncts is the standard (wrong but serviceable)
  // assumption for a capacity hint. Compressed columns sharpen the estimate:
  // exact match counts for RLE blocks, per-block uniform for FOR blocks.
  for (const Pruner& p : pruners) {
    plan.selectivity *= p.zm->EstimateSelectivity(*p.c, p.comp);
  }
  plan.live.reserve(plan.num_morsels - plan.pruned);
  for (size_t m = 0; m < plan.num_morsels; ++m) {
    if (!skip[m]) plan.live.push_back(m);
  }
  return plan;
}

/// EXPLOREDB_VALIDATE=1 deep-validates every adaptive structure of the
/// queried table after each query (integration/stress suites run under it in
/// CI). Read once: the flag is a process-level mode, not per query.
bool PerQueryValidationEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("EXPLOREDB_VALIDATE");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return enabled;
}

}  // namespace

Executor::Executor(Database* db)
    : db_(db), planner_(std::make_unique<Planner>(db, this)) {}

Executor::~Executor() = default;

std::optional<Executor::RangePlan> Executor::ExtractRange(
    const Predicate& pred, const Schema& schema, TableEntry* entry) {
  // Find a column with both a lower and an upper int64 bound (Eq counts as
  // both). All other conjuncts become the residual.
  std::unordered_map<size_t, std::pair<std::optional<int64_t>,
                                       std::optional<int64_t>>>
      bounds;  // column -> (lo, hi) as half-open [lo, hi)
  for (const Condition& c : pred.conjuncts()) {
    if (c.column >= schema.num_fields()) return std::nullopt;
    if (schema.field(c.column).type != DataType::kInt64) continue;
    if (!c.constant.is_int64()) continue;
    int64_t v = c.constant.int64();
    auto& [lo, hi] = bounds[c.column];
    switch (c.op) {
      case CompareOp::kGe:
        lo = lo ? std::max(*lo, v) : v;
        break;
      case CompareOp::kGt:
        lo = lo ? std::max(*lo, v + 1) : v + 1;
        break;
      case CompareOp::kLt:
        hi = hi ? std::min(*hi, v) : v;
        break;
      case CompareOp::kLe:
        hi = hi ? std::min(*hi, v + 1) : v + 1;
        break;
      case CompareOp::kEq:
        lo = lo ? std::max(*lo, v) : v;
        hi = hi ? std::min(*hi, v + 1) : v + 1;
        break;
      case CompareOp::kNe:
        break;  // not index-serviceable
    }
  }
  // Pick the lowest-index fully bounded column: `bounds` is an
  // unordered_map, and "first qualifying entry" would make plan choice (and
  // ExecStats) vary run-to-run when several columns qualify.
  std::optional<size_t> best;
  for (const auto& [col, range] : bounds) {
    if (!range.first.has_value() || !range.second.has_value()) continue;
    if (!best.has_value() || col < *best) best = col;
  }
  if (best.has_value()) {
    RangePlan plan;
    plan.column = *best;
    plan.lo = *bounds[*best].first;
    plan.hi = *bounds[*best].second;
    for (const Condition& c : pred.conjuncts()) {
      bool consumed = c.column == *best && c.constant.is_int64() &&
                      c.op != CompareOp::kNe;
      if (!consumed) plan.residual.push_back(c);
    }
    (void)entry;
    return plan;
  }
  return std::nullopt;
}

Result<std::vector<uint32_t>> Executor::SelectPositions(
    TableEntry* entry, const Predicate& pred, ExecutionMode mode,
    const ExecContext& ctx, ExecStats* stats) {
  const bool tracing = ctx.tracing();
  TraceSpan select_span("select", tracing, &stats->select_nanos);
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());

  if (mode == ExecutionMode::kCracking || mode == ExecutionMode::kFullIndex) {
    std::optional<RangePlan> plan =
        ExtractRange(pred, entry->schema(), entry);
    if (plan.has_value()) {
      std::vector<uint32_t> candidates;
      if (mode == ExecutionMode::kCracking) {
        stats->path = AccessPath::kCracker;
        EXPLOREDB_ASSIGN_OR_RETURN(EpochCrackerColumn * cracker,
                                   entry->GetCracker(plan->column));
        // Converged bounds answer under the cracker's shared lock (readers
        // don't block each other); cracking serializes inside the cracker
        // and publishes a new epoch. Candidates are sorted below, so the
        // answer is independent of the physical crack state — concurrent
        // sessions over one database stay bit-identical to serial runs.
        EpochCrackerColumn::ReadStats crs =
            cracker->RangeSelectInto(plan->lo, plan->hi, &candidates);
        stats->rows_scanned += crs.rows_touched;
      } else {
        stats->path = AccessPath::kSorted;
        EXPLOREDB_ASSIGN_OR_RETURN(const SortedIndex* index,
                                   entry->GetSortedIndex(plan->column));
        candidates = index->RangeSelect(plan->lo, plan->hi);
        stats->rows_scanned += candidates.size();
      }
      std::sort(candidates.begin(), candidates.end());
      if (plan->residual.empty()) return candidates;
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, plan->residual));
      std::vector<uint32_t> out;
      for (uint32_t row : candidates) {
        ++stats->rows_scanned;
        if (MatchesAll(plan->residual, cols, row)) out.push_back(row);
      }
      return out;
    }
    // No indexable range: fall through to a scan.
  }

  stats->path = AccessPath::kScan;
  const std::vector<Condition>& conds = pred.conjuncts();
  EXPLOREDB_ASSIGN_OR_RETURN(CondInputs in,
                             FetchCondInputs(entry, conds, ctx));
  const size_t morsel = std::max<size_t>(1, ctx.morsel_size());
  ThreadPool* pool = ctx.thread_pool();
  EXPLOREDB_ASSIGN_OR_RETURN(MorselPlan plan,
                             PlanMorsels(entry, conds, in, n, morsel, ctx));
  stats->morsels_pruned += plan.pruned;
  stats->rows_scanned += n - plan.rows_pruned;
  const size_t live_rows = n - plan.rows_pruned;
  if (in.any_compressed) stats->compressed_morsels += plan.live.size();

  auto filter_morsel = [&](size_t m, std::vector<uint32_t>* buf,
                           int64_t* decompress) {
    TraceSpan span("morsel", tracing);
    const uint32_t begin = static_cast<uint32_t>(m * morsel);
    const uint32_t end =
        static_cast<uint32_t>(std::min(n, m * morsel + morsel));
    if (in.any_compressed) {
      FilterRangeMixed(conds, in, begin, end, tracing, decompress, buf);
    } else {
      Predicate::FilterRange(conds, in.cols, begin, end, buf);
    }
  };

  // Serial kernel: one pass appending straight into the output, pre-sized
  // from the zone maps' selectivity estimate (+1 morsel of slack because
  // FilterRange transiently resizes to the worst case for the morsel in
  // flight).
  if (pool == nullptr || plan.live.size() <= 1) {
    std::vector<uint32_t> out;
    const auto estimated = static_cast<size_t>(
        plan.selectivity * static_cast<double>(live_rows));
    out.reserve(std::min(live_rows, estimated + morsel));
    for (size_t m : plan.live) {
      if (ctx.Interrupted()) return InterruptedStatus(ctx);
      filter_morsel(m, &out, &stats->decompress_nanos);
    }
    stats->morsels_dispatched += plan.live.size();
    return out;
  }

  // Morsel-parallel kernel: per-morsel position buffers, merged in morsel
  // order — byte-identical to the serial scan for any worker count. Each
  // worker filters into its reusable thread-local scratch and copies out
  // exactly the surviving positions, so per-morsel buffers are allocated at
  // their final size instead of growing geometrically. Decompress time is
  // accumulated per morsel and folded in morsel order below.
  std::vector<std::vector<uint32_t>> parts(plan.live.size());
  std::vector<int64_t> decompress(plan.live.size(), 0);
  ThreadPool::ForStats fs = pool->ParallelFor(plan.live.size(), [&](size_t i) {
    if (ctx.Interrupted()) return;
    std::vector<uint32_t>& scratch = MorselScratch();
    scratch.clear();
    filter_morsel(plan.live[i], &scratch, &decompress[i]);
    parts[i].assign(scratch.begin(), scratch.end());
  });
  stats->morsels_dispatched += fs.chunks;
  stats->threads_used = std::max(stats->threads_used, fs.threads_used);
  if (ctx.Interrupted()) return InterruptedStatus(ctx);

  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  for (int64_t d : decompress) stats->decompress_nanos += d;
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Result<Estimate> Executor::AggregatePositions(
    const std::vector<uint32_t>& positions, const ColumnVector* measure,
    AggKind kind, const ExecContext& ctx, ExecStats* stats) {
  Estimate e;
  e.confidence = ctx.options().confidence;
  e.sample_size = positions.size();
  if (kind == AggKind::kCount) {
    e.value = static_cast<double>(positions.size());
    return e;
  }

  // SUM/AVG: per-morsel partial sums merged in morsel order. The serial path
  // is the same computation with one worker, and every kernel table follows
  // the same striped accumulation order, so every thread count and SIMD path
  // produces bit-identical doubles.
  const double* dbl = measure->type() == DataType::kDouble
                          ? measure->double_data().data()
                          : nullptr;
  const int64_t* i64 = measure->type() == DataType::kInt64
                           ? measure->int64_data().data()
                           : nullptr;
  const simd::KernelTable& kt = simd::ActiveKernels();
  auto sum_slice = [&](size_t begin, size_t end) {
    const uint32_t* sel = positions.data() + begin;
    const auto cnt = static_cast<uint32_t>(end - begin);
    return dbl != nullptr ? kt.sum_f64_sel(dbl, sel, cnt)
                          : kt.sum_i64_sel(i64, sel, cnt);
  };

  const size_t morsel = std::max<size_t>(1, ctx.morsel_size());
  const size_t num_morsels = MorselCount(positions.size(), morsel);
  ThreadPool* pool = ctx.thread_pool();
  std::vector<double> partials(num_morsels, 0.0);
  const bool tracing = ctx.tracing();
  auto body = [&](size_t m) {
    if (ctx.Interrupted()) return;
    TraceSpan span("agg_morsel", tracing);
    partials[m] = sum_slice(m * morsel,
                            std::min(positions.size(), m * morsel + morsel));
  };
  if (pool != nullptr && num_morsels > 1) {
    ThreadPool::ForStats fs = pool->ParallelFor(num_morsels, body);
    stats->morsels_dispatched += fs.chunks;
    stats->threads_used = std::max(stats->threads_used, fs.threads_used);
  } else {
    for (size_t m = 0; m < num_morsels; ++m) body(m);
    stats->morsels_dispatched += num_morsels;
  }
  if (ctx.Interrupted()) return InterruptedStatus(ctx);

  double sum = 0;
  for (double p : partials) sum += p;
  switch (kind) {
    case AggKind::kSum:
      e.value = sum;
      break;
    case AggKind::kAvg:
      e.value = positions.empty()
                    ? 0.0
                    : sum / static_cast<double>(positions.size());
      break;
    case AggKind::kCount:
      break;  // handled above
  }
  return e;
}

Result<Estimate> Executor::ScanAggregate(TableEntry* entry,
                                         const Predicate& pred,
                                         const ColumnVector* measure,
                                         const CompressedInt64Column* measure_comp,
                                         AggKind kind, const ExecContext& ctx,
                                         ExecStats* stats) {
  const bool tracing = ctx.tracing();
  stats->path = AccessPath::kScan;

  // Select span: column fetch + zone-map pruning (the per-morsel filter runs
  // fused inside the aggregate loop below, so planning is what "select"
  // means here).
  TraceSpan select_span("select", tracing, &stats->select_nanos);
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());
  const std::vector<Condition>& conds = pred.conjuncts();
  EXPLOREDB_ASSIGN_OR_RETURN(CondInputs in,
                             FetchCondInputs(entry, conds, ctx));
  const size_t morsel = std::max<size_t>(1, ctx.morsel_size());
  EXPLOREDB_ASSIGN_OR_RETURN(MorselPlan plan,
                             PlanMorsels(entry, conds, in, n, morsel, ctx));
  stats->morsels_pruned += plan.pruned;
  stats->rows_scanned += n - plan.rows_pruned;
  if (in.any_compressed || measure_comp != nullptr) {
    stats->compressed_morsels += plan.live.size();
  }
  select_span.Stop();

  TraceSpan agg_span("aggregate", tracing, &stats->aggregate_nanos);
  const simd::KernelTable& kt = simd::ActiveKernels();
  const double* dbl =
      measure != nullptr && measure->type() == DataType::kDouble
          ? measure->double_data().data()
          : nullptr;
  const int64_t* i64 =
      measure != nullptr && measure->type() == DataType::kInt64
          ? measure->int64_data().data()
          : nullptr;

  // One fused pass per morsel: filter into the worker's reusable selection
  // vector, reduce it with the dispatched masked-sum kernel, keep only the
  // (sum, count, decompress) partial. Partials merge in morsel order below,
  // so the result is bit-identical for any thread count (serial is the same
  // computation with one worker).
  struct Partial {
    double sum = 0;
    uint64_t count = 0;
    int64_t decompress_nanos = 0;
  };
  std::vector<Partial> partials(plan.live.size());
  auto agg_morsel = [&](size_t i) {
    TraceSpan span("morsel", tracing);
    const size_t m = plan.live[i];
    const uint32_t begin = static_cast<uint32_t>(m * morsel);
    const uint32_t end =
        static_cast<uint32_t>(std::min(n, m * morsel + morsel));
    std::vector<uint32_t>& sel = MorselScratch();
    sel.clear();
    if (in.any_compressed) {
      FilterRangeMixed(conds, in, begin, end, tracing,
                       &partials[i].decompress_nanos, &sel);
    } else {
      Predicate::FilterRange(conds, in.cols, begin, end, &sel);
    }
    partials[i].count = sel.size();
    if (kind != AggKind::kCount && !sel.empty()) {
      const auto cnt = static_cast<uint32_t>(sel.size());
      if (measure_comp != nullptr) {
        // Decode only the surviving rows of the compressed measure, then
        // reduce the dense decode with an identity selection: the masked-sum
        // kernel sees the same value sequence (and stripe order) as the raw
        // path, so the double is bit-identical.
        std::vector<int64_t>& vals = MorselValueScratch();
        vals.resize(cnt);
        {
          TraceSpan dspan("decompress", tracing,
                          &partials[i].decompress_nanos);
          measure_comp->Gather(sel.data(), cnt, vals.data());
        }
        partials[i].sum =
            kt.sum_i64_sel(vals.data(), IotaScratch(cnt).data(), cnt);
      } else {
        partials[i].sum = dbl != nullptr
                              ? kt.sum_f64_sel(dbl, sel.data(), cnt)
                              : kt.sum_i64_sel(i64, sel.data(), cnt);
      }
    }
  };
  ThreadPool* pool = ctx.thread_pool();
  if (pool != nullptr && plan.live.size() > 1) {
    ThreadPool::ForStats fs = pool->ParallelFor(plan.live.size(), [&](size_t i) {
      if (ctx.Interrupted()) return;
      agg_morsel(i);
    });
    stats->morsels_dispatched += fs.chunks;
    stats->threads_used = std::max(stats->threads_used, fs.threads_used);
  } else {
    for (size_t i = 0; i < plan.live.size(); ++i) {
      if (ctx.Interrupted()) return InterruptedStatus(ctx);
      agg_morsel(i);
    }
    stats->morsels_dispatched += plan.live.size();
  }
  if (ctx.Interrupted()) return InterruptedStatus(ctx);

  double sum = 0;
  uint64_t matches = 0;
  for (const Partial& p : partials) {
    sum += p.sum;
    matches += p.count;
    stats->decompress_nanos += p.decompress_nanos;
  }
  Estimate e;
  e.confidence = ctx.options().confidence;
  e.sample_size = matches;
  switch (kind) {
    case AggKind::kCount:
      e.value = static_cast<double>(matches);
      break;
    case AggKind::kSum:
      e.value = sum;
      break;
    case AggKind::kAvg:
      e.value = matches == 0 ? 0.0 : sum / static_cast<double>(matches);
      break;
  }
  return e;
}

Result<QueryResult> Executor::Execute(const Query& query,
                                      const ExecContext& ctx) {
  // Budgeted queries route through the planner, which resolves to a concrete
  // mode and re-enters this function (or runs its own progressive loop).
  if (ctx.options().mode == ExecutionMode::kBudgeted) {
    return planner_->Execute(query, ctx, nullptr);
  }
  const bool tracing = ctx.tracing();
  ExecStats stats;
  TraceSpan query_span("query", tracing, &stats.total_nanos);
  TableEntry* entry = nullptr;
  ExecutionMode mode = ctx.options().mode;
  stats.simd_path = simd::ActivePath();
  {
    TraceSpan plan_span("plan", tracing, &stats.plan_nanos);
    EXPLOREDB_ASSIGN_OR_RETURN(entry, db_->GetTable(query.table()));
    if (mode == ExecutionMode::kAuto) {
      // Self-organizing default: let adaptive indexing grow under predicates
      // it can serve; everything else scans. (Cracking silently falls back to
      // a scan for non-indexable predicates, so kCracking is the safe pick
      // whenever a predicate exists.)
      mode = query.where().empty() ? ExecutionMode::kScan
                                   : ExecutionMode::kCracking;
    }
    stats.resolved_mode = mode;
  }
  // Cancellation aborts every path, but an expired deadline still admits
  // online aggregation: its contract is to answer with the current estimate
  // (approximate) rather than fail.
  if (ctx.cancelled() ||
      (ctx.DeadlineExceeded() && mode != ExecutionMode::kOnline)) {
    return InterruptedStatus(ctx);
  }

  if (query.aggregate().has_value() || query.group_by().has_value()) {
    EXPLOREDB_ASSIGN_OR_RETURN(
        QueryResult result, ExecuteAggregate(entry, query, mode, ctx, &stats));
    query_span.Stop();  // finalize total_nanos before publishing stats
    result.exec_stats = stats;
    RecordQueryMetrics(stats);
    if (PerQueryValidationEnabled()) CHECK_OK(entry->ValidateAdaptiveState());
    return result;
  }

  // Selection / projection.
  QueryResult result;
  EXPLOREDB_ASSIGN_OR_RETURN(
      result.positions,
      SelectPositions(entry, query.where(), mode, ctx, &stats));

  // Project requested columns (all columns if unspecified).
  {
    TraceSpan project_span("project", tracing, &stats.project_nanos);
    std::vector<size_t> col_indexes;
    if (query.select().empty()) {
      for (size_t c = 0; c < entry->schema().num_fields(); ++c) {
        col_indexes.push_back(c);
      }
    } else {
      for (const std::string& name : query.select()) {
        EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                                   entry->schema().FieldIndex(name));
        col_indexes.push_back(idx);
      }
    }
    Table projected(entry->schema().Select(col_indexes));
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                                 entry->GetColumn(col_indexes[i]));
      *projected.mutable_column(i) = col->Gather(result.positions);
    }
    result.rows = std::move(projected);
  }
  query_span.Stop();
  result.exec_stats = stats;
  RecordQueryMetrics(stats);
  // Abort at the corruption site, with the violated invariant in the
  // message, rather than let a malformed index serve the next query.
  if (PerQueryValidationEnabled()) CHECK_OK(entry->ValidateAdaptiveState());
  return result;
}

Result<QueryResult> Executor::Execute(const QueryBuilder& builder,
                                      const ExecContext& ctx) {
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                             db_->GetTable(builder.table()));
  EXPLOREDB_ASSIGN_OR_RETURN(Query query, builder.Build(entry->schema()));
  return Execute(query, ctx);
}

Result<QueryResult> Executor::ExecuteProgressive(
    const Query& query, const ExecContext& ctx,
    const ProgressiveCallback& callback) {
  ExecContext budgeted = ctx;
  budgeted.options().mode = ExecutionMode::kBudgeted;
  return planner_->Execute(query, budgeted, &callback);
}

Result<QueryResult> Executor::ExecuteAggregate(TableEntry* entry,
                                               const Query& query,
                                               ExecutionMode mode,
                                               const ExecContext& ctx,
                                               ExecStats* stats) {
  if (!query.aggregate().has_value()) {
    return Status::InvalidArgument("GROUP BY requires an aggregate");
  }
  const AggregateExpr& agg = *query.aggregate();
  const QueryOptions& options = ctx.options();
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());

  // Resolve the measure column (COUNT may omit it), plus its compressed
  // representation when scans may use one (feeds the fused scan-aggregate's
  // gather-from-compressed path).
  const ColumnVector* measure = nullptr;
  const CompressedInt64Column* measure_comp = nullptr;
  if (!agg.column.empty()) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                               entry->schema().FieldIndex(agg.column));
    EXPLOREDB_ASSIGN_OR_RETURN(measure, entry->GetColumn(idx));
    if (measure->type() == DataType::kString) {
      return Status::InvalidArgument("aggregate over string column '" +
                                     agg.column + "'");
    }
    if (measure->type() == DataType::kInt64 && options.use_compression) {
      EXPLOREDB_ASSIGN_OR_RETURN(const CompressedColumn* cc,
                                 entry->GetCompressed(idx));
      if (cc != nullptr && cc->scan_enabled()) measure_comp = cc->i64();
    }
  } else if (agg.kind != AggKind::kCount) {
    return Status::InvalidArgument("only COUNT may omit the column");
  }

  QueryResult result;
  const bool tracing = ctx.tracing();

  // ---- Grouped aggregates -------------------------------------------------
  if (query.group_by().has_value()) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t gidx,
                               entry->schema().FieldIndex(*query.group_by()));
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* gcol,
                               entry->GetColumn(gidx));
    // Which rows participate?
    std::vector<uint32_t> positions;
    if (mode == ExecutionMode::kSampled) {
      TraceSpan select_span("select", tracing, &stats->select_nanos);
      stats->path = AccessPath::kSample;
      Random rng(42);
      std::vector<uint32_t> sample = BernoulliSample(
          n, options.sample_fraction, &rng);
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, query.where().conjuncts()));
      for (uint32_t row : sample) {
        ++stats->rows_scanned;
        if (MatchesAll(query.where().conjuncts(), cols, row)) {
          positions.push_back(row);
        }
      }
      result.approximate = true;
    } else {
      EXPLOREDB_ASSIGN_OR_RETURN(
          positions,
          SelectPositions(entry, query.where(), mode, ctx, stats));
    }
    TraceSpan agg_span("aggregate", tracing, &stats->aggregate_nanos);
    if (result.approximate) {
      // Sampled mode keeps the value-list accumulator: the sample is small,
      // and per-group CIs (EstimateMean) need the raw values.
      struct Acc {
        std::vector<double> values;
        uint64_t count = 0;
      };
      std::map<std::string, Acc> groups;
      for (uint32_t row : positions) {
        Acc& acc = groups[gcol->GetValue(row).ToString()];
        ++acc.count;
        if (measure != nullptr) acc.values.push_back(measure->GetDouble(row));
      }
      for (auto& [key, acc] : groups) {
        Estimate e;
        e.confidence = options.confidence;
        e.sample_size = acc.count;
        switch (agg.kind) {
          case AggKind::kCount:
            e.value = static_cast<double>(acc.count);
            if (options.sample_fraction > 0) e.value /= options.sample_fraction;
            break;
          case AggKind::kSum: {
            double s = 0;
            for (double v : acc.values) s += v;
            e.value = s;
            if (options.sample_fraction > 0) e.value /= options.sample_fraction;
            break;
          }
          case AggKind::kAvg:
            e = EstimateMean(acc.values, options.confidence);
            break;
        }
        result.groups.push_back({key, e});
      }
    } else {
      // Exact modes: typed, morsel-parallel hash aggregation. The group
      // column's zone map supplies the key range that unlocks the dense
      // int64 fast path; string keys aggregate over dictionary codes.
      const DictEncoded* dict = nullptr;
      if (gcol->type() == DataType::kString) {
        EXPLOREDB_ASSIGN_OR_RETURN(dict, entry->GetDict(gidx));
      }
      std::optional<std::pair<int64_t, int64_t>> key_range;
      if (gcol->type() == DataType::kInt64) {
        EXPLOREDB_ASSIGN_OR_RETURN(const ZoneMap* zm, entry->GetZoneMap(gidx));
        key_range = zm->Int64Range();
      }
      EXPLOREDB_ASSIGN_OR_RETURN(
          result.groups,
          HashGroupBy(*gcol, dict, measure, agg.kind, options.confidence,
                      positions, key_range, ctx, stats));
    }
    return result;
  }

  // ---- Scalar aggregates --------------------------------------------------
  switch (mode) {
    case ExecutionMode::kSampled: {
      stats->path = AccessPath::kSample;
      Random rng(42);
      std::vector<double> matched;
      std::vector<double> contributions;  // 0 for non-matching rows
      size_t matches = 0;
      size_t sample_size = 0;
      {
        TraceSpan select_span("select", tracing, &stats->select_nanos);
        std::vector<uint32_t> sample =
            BernoulliSample(n, options.sample_fraction, &rng);
        sample_size = sample.size();
        EXPLOREDB_ASSIGN_OR_RETURN(
            std::vector<const ColumnVector*> cols,
            FetchConditionColumns(entry, query.where().conjuncts()));
        for (uint32_t row : sample) {
          ++stats->rows_scanned;
          bool hit = MatchesAll(query.where().conjuncts(), cols, row);
          matches += hit;
          double v =
              (measure != nullptr && hit) ? measure->GetDouble(row) : 0.0;
          contributions.push_back(hit ? v : 0.0);
          if (hit && measure != nullptr) matched.push_back(v);
        }
        result.approximate = true;
      }
      TraceSpan agg_span("aggregate", tracing, &stats->aggregate_nanos);
      switch (agg.kind) {
        case AggKind::kCount:
          result.scalar = EstimateCount(matches, sample_size, n,
                                        options.confidence);
          break;
        case AggKind::kSum:
          result.scalar =
              EstimateSum(contributions, n, options.confidence);
          break;
        case AggKind::kAvg:
          result.scalar = EstimateMean(matched, options.confidence);
          break;
      }
      return result;
    }
    case ExecutionMode::kOnline: {
      // Materialize predicate mask + values (one worker per partition), then
      // consume in random order until the error budget is met. A deadline
      // here bounds refinement: the running estimate is returned approximate
      // rather than failing the query.
      stats->path = AccessPath::kOnline;
      TraceSpan select_span("select", tracing, &stats->select_nanos);
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, query.where().conjuncts()));
      OnlineInput input = BuildOnlineInput(
          query.where().conjuncts(), cols, measure, n, ctx.thread_pool(),
          std::max<size_t>(1, ctx.morsel_size()), &stats->morsels_dispatched,
          &stats->threads_used);
      select_span.Stop();
      TraceSpan agg_span("aggregate", tracing, &stats->aggregate_nanos);
      OnlineAggregator agg_runner(std::move(input.values),
                                  std::move(input.mask), agg.kind);
      const size_t batch = std::max<size_t>(n / 100, 64);
      Estimate current = agg_runner.Current(options.confidence);
      bool deadline_stop = false;
      bool first = true;
      while (!agg_runner.done()) {
        if (ctx.cancelled()) return Status::Cancelled("query cancelled");
        // Always consume at least one batch: an answer under deadline must
        // be a real (if coarse) estimate, never the zero-sample degenerate.
        if (!first && ctx.DeadlineExceeded()) {
          deadline_stop = true;
          break;
        }
        first = false;
        TraceSpan round_span("online_round", tracing);
        // ProcessNext returns the rows actually consumed — the final batch
        // is usually short, and += batch would overcount it.
        stats->rows_scanned += agg_runner.ProcessNext(batch);
        current = agg_runner.Current(options.confidence);
        if (options.error_budget > 0 &&
            current.ci_half_width <= options.error_budget) {
          break;
        }
      }
      result.scalar = current;
      result.approximate = !agg_runner.done() || deadline_stop;
      return result;
    }
    default: {
      // Index-serviceable predicates keep the two-phase shape (index probe,
      // then masked aggregation over the probe's positions). Everything
      // else runs the fused scan-aggregate, which filters and reduces each
      // morsel in one pass without materializing the full position list.
      const bool indexed =
          (mode == ExecutionMode::kCracking ||
           mode == ExecutionMode::kFullIndex) &&
          ExtractRange(query.where(), entry->schema(), entry).has_value();
      if (!indexed) {
        EXPLOREDB_ASSIGN_OR_RETURN(
            Estimate e,
            ScanAggregate(entry, query.where(), measure, measure_comp,
                          agg.kind, ctx, stats));
        result.scalar = e;
        return result;
      }
      std::vector<uint32_t> positions;
      EXPLOREDB_ASSIGN_OR_RETURN(
          positions,
          SelectPositions(entry, query.where(), mode, ctx, stats));
      TraceSpan agg_span("aggregate", tracing, &stats->aggregate_nanos);
      EXPLOREDB_ASSIGN_OR_RETURN(
          Estimate e,
          AggregatePositions(positions, measure, agg.kind, ctx, stats));
      result.scalar = e;
      return result;
    }
  }
}

}  // namespace exploredb
