#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/random.h"
#include "common/stopwatch.h"
#include "sampling/sampler.h"

namespace exploredb {

namespace {

/// Evaluates `conditions` on one row, columns supplied in parallel order.
bool MatchesAll(const std::vector<Condition>& conditions,
                const std::vector<const ColumnVector*>& cols, size_t row) {
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (!conditions[i].MatchesColumn(*cols[i], row)) return false;
  }
  return true;
}

/// Fetches the column each condition references.
Result<std::vector<const ColumnVector*>> FetchConditionColumns(
    TableEntry* entry, const std::vector<Condition>& conditions) {
  std::vector<const ColumnVector*> cols;
  cols.reserve(conditions.size());
  for (const Condition& c : conditions) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                               entry->GetColumn(c.column));
    cols.push_back(col);
  }
  return cols;
}

}  // namespace

std::optional<Executor::RangePlan> Executor::ExtractRange(
    const Predicate& pred, const Schema& schema, TableEntry* entry) {
  // Find a column with both a lower and an upper int64 bound (Eq counts as
  // both). All other conjuncts become the residual.
  std::unordered_map<size_t, std::pair<std::optional<int64_t>,
                                       std::optional<int64_t>>>
      bounds;  // column -> (lo, hi) as half-open [lo, hi)
  for (const Condition& c : pred.conjuncts()) {
    if (c.column >= schema.num_fields()) return std::nullopt;
    if (schema.field(c.column).type != DataType::kInt64) continue;
    if (!c.constant.is_int64()) continue;
    int64_t v = c.constant.int64();
    auto& [lo, hi] = bounds[c.column];
    switch (c.op) {
      case CompareOp::kGe:
        lo = lo ? std::max(*lo, v) : v;
        break;
      case CompareOp::kGt:
        lo = lo ? std::max(*lo, v + 1) : v + 1;
        break;
      case CompareOp::kLt:
        hi = hi ? std::min(*hi, v) : v;
        break;
      case CompareOp::kLe:
        hi = hi ? std::min(*hi, v + 1) : v + 1;
        break;
      case CompareOp::kEq:
        lo = lo ? std::max(*lo, v) : v;
        hi = hi ? std::min(*hi, v + 1) : v + 1;
        break;
      case CompareOp::kNe:
        break;  // not index-serviceable
    }
  }
  for (const auto& [col, range] : bounds) {
    if (!range.first.has_value() || !range.second.has_value()) continue;
    RangePlan plan;
    plan.column = col;
    plan.lo = *range.first;
    plan.hi = *range.second;
    for (const Condition& c : pred.conjuncts()) {
      bool consumed = c.column == col && c.constant.is_int64() &&
                      c.op != CompareOp::kNe;
      if (!consumed) plan.residual.push_back(c);
    }
    (void)entry;
    return plan;
  }
  return std::nullopt;
}

Result<std::vector<uint32_t>> Executor::SelectPositions(
    TableEntry* entry, const Predicate& pred, ExecutionMode mode,
    uint64_t* rows_scanned) {
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());

  if (mode == ExecutionMode::kCracking || mode == ExecutionMode::kFullIndex) {
    std::optional<RangePlan> plan =
        ExtractRange(pred, entry->schema(), entry);
    if (plan.has_value()) {
      std::vector<uint32_t> candidates;
      if (mode == ExecutionMode::kCracking) {
        EXPLOREDB_ASSIGN_OR_RETURN(CrackerColumn * cracker,
                                   entry->GetCracker(plan->column));
        uint64_t touched_before = cracker->stats().elements_touched;
        CrackRange range = cracker->RangeSelect(plan->lo, plan->hi);
        *rows_scanned +=
            cracker->stats().elements_touched - touched_before + range.count();
        candidates.assign(cracker->row_ids().begin() + range.begin,
                          cracker->row_ids().begin() + range.end);
      } else {
        EXPLOREDB_ASSIGN_OR_RETURN(const SortedIndex* index,
                                   entry->GetSortedIndex(plan->column));
        candidates = index->RangeSelect(plan->lo, plan->hi);
        *rows_scanned += candidates.size();
      }
      std::sort(candidates.begin(), candidates.end());
      if (plan->residual.empty()) return candidates;
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, plan->residual));
      std::vector<uint32_t> out;
      for (uint32_t row : candidates) {
        ++*rows_scanned;
        if (MatchesAll(plan->residual, cols, row)) out.push_back(row);
      }
      return out;
    }
    // No indexable range: fall through to a scan.
  }

  const std::vector<Condition>& conds = pred.conjuncts();
  EXPLOREDB_ASSIGN_OR_RETURN(std::vector<const ColumnVector*> cols,
                             FetchConditionColumns(entry, conds));
  std::vector<uint32_t> out;
  for (size_t row = 0; row < n; ++row) {
    ++*rows_scanned;
    if (MatchesAll(conds, cols, row)) {
      out.push_back(static_cast<uint32_t>(row));
    }
  }
  return out;
}

Result<QueryResult> Executor::Execute(const Query& query,
                                      const QueryOptions& options_in) {
  Stopwatch timer;
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry, db_->GetTable(query.table()));
  QueryOptions options = options_in;
  if (options.mode == ExecutionMode::kAuto) {
    // Self-organizing default: let adaptive indexing grow under predicates
    // it can serve; everything else scans. (Cracking silently falls back to
    // a scan for non-indexable predicates, so kCracking is the safe pick
    // whenever a predicate exists.)
    options.mode = query.where().empty() ? ExecutionMode::kScan
                                         : ExecutionMode::kCracking;
  }
  if (query.aggregate().has_value() || query.group_by().has_value()) {
    EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                               ExecuteAggregate(entry, query, options));
    result.exec_micros = timer.ElapsedMicros();
    return result;
  }

  // Selection / projection.
  QueryResult result;
  EXPLOREDB_ASSIGN_OR_RETURN(
      result.positions,
      SelectPositions(entry, query.where(), options.mode,
                      &result.rows_scanned));

  // Project requested columns (all columns if unspecified).
  std::vector<size_t> col_indexes;
  if (query.select().empty()) {
    for (size_t c = 0; c < entry->schema().num_fields(); ++c) {
      col_indexes.push_back(c);
    }
  } else {
    for (const std::string& name : query.select()) {
      EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                                 entry->schema().FieldIndex(name));
      col_indexes.push_back(idx);
    }
  }
  Table projected(entry->schema().Select(col_indexes));
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                               entry->GetColumn(col_indexes[i]));
    *projected.mutable_column(i) = col->Gather(result.positions);
  }
  result.rows = std::move(projected);
  result.exec_micros = timer.ElapsedMicros();
  return result;
}

Result<QueryResult> Executor::ExecuteAggregate(TableEntry* entry,
                                               const Query& query,
                                               const QueryOptions& options) {
  if (!query.aggregate().has_value()) {
    return Status::InvalidArgument("GROUP BY requires an aggregate");
  }
  const AggregateExpr& agg = *query.aggregate();
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());

  // Resolve the measure column (COUNT may omit it).
  const ColumnVector* measure = nullptr;
  if (!agg.column.empty()) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                               entry->schema().FieldIndex(agg.column));
    EXPLOREDB_ASSIGN_OR_RETURN(measure, entry->GetColumn(idx));
    if (measure->type() == DataType::kString) {
      return Status::InvalidArgument("aggregate over string column '" +
                                     agg.column + "'");
    }
  } else if (agg.kind != AggKind::kCount) {
    return Status::InvalidArgument("only COUNT may omit the column");
  }

  QueryResult result;

  // ---- Grouped aggregates -------------------------------------------------
  if (query.group_by().has_value()) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t gidx,
                               entry->schema().FieldIndex(*query.group_by()));
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* gcol,
                               entry->GetColumn(gidx));
    // Which rows participate?
    std::vector<uint32_t> positions;
    if (options.mode == ExecutionMode::kSampled) {
      Random rng(42);
      std::vector<uint32_t> sample = BernoulliSample(
          n, options.sample_fraction, &rng);
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, query.where().conjuncts()));
      for (uint32_t row : sample) {
        ++result.rows_scanned;
        if (MatchesAll(query.where().conjuncts(), cols, row)) {
          positions.push_back(row);
        }
      }
      result.approximate = true;
    } else {
      EXPLOREDB_ASSIGN_OR_RETURN(
          positions, SelectPositions(entry, query.where(), options.mode,
                                     &result.rows_scanned));
    }
    struct Acc {
      std::vector<double> values;
      uint64_t count = 0;
    };
    std::map<std::string, Acc> groups;
    for (uint32_t row : positions) {
      Acc& acc = groups[gcol->GetValue(row).ToString()];
      ++acc.count;
      if (measure != nullptr) acc.values.push_back(measure->GetDouble(row));
    }
    for (auto& [key, acc] : groups) {
      Estimate e;
      e.confidence = options.confidence;
      e.sample_size = acc.count;
      switch (agg.kind) {
        case AggKind::kCount:
          e.value = static_cast<double>(acc.count);
          if (result.approximate && options.sample_fraction > 0) {
            e.value /= options.sample_fraction;
          }
          break;
        case AggKind::kSum: {
          double s = 0;
          for (double v : acc.values) s += v;
          e.value = s;
          if (result.approximate && options.sample_fraction > 0) {
            e.value /= options.sample_fraction;
          }
          break;
        }
        case AggKind::kAvg:
          e = EstimateMean(acc.values, options.confidence);
          if (!result.approximate) e.ci_half_width = 0.0;
          break;
      }
      result.groups.push_back({key, e});
    }
    return result;
  }

  // ---- Scalar aggregates --------------------------------------------------
  switch (options.mode) {
    case ExecutionMode::kSampled: {
      Random rng(42);
      std::vector<uint32_t> sample =
          BernoulliSample(n, options.sample_fraction, &rng);
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, query.where().conjuncts()));
      std::vector<double> matched;
      std::vector<double> contributions;  // 0 for non-matching rows
      size_t matches = 0;
      for (uint32_t row : sample) {
        ++result.rows_scanned;
        bool hit = MatchesAll(query.where().conjuncts(), cols, row);
        matches += hit;
        double v = (measure != nullptr && hit) ? measure->GetDouble(row) : 0.0;
        contributions.push_back(hit ? v : 0.0);
        if (hit && measure != nullptr) matched.push_back(v);
      }
      result.approximate = true;
      switch (agg.kind) {
        case AggKind::kCount:
          result.scalar = EstimateCount(matches, sample.size(), n,
                                        options.confidence);
          break;
        case AggKind::kSum:
          result.scalar =
              EstimateSum(contributions, n, options.confidence);
          break;
        case AggKind::kAvg:
          result.scalar = EstimateMean(matched, options.confidence);
          break;
      }
      return result;
    }
    case ExecutionMode::kOnline: {
      // Materialize predicate mask + values, then consume in random order
      // until the error budget is met.
      EXPLOREDB_ASSIGN_OR_RETURN(
          std::vector<const ColumnVector*> cols,
          FetchConditionColumns(entry, query.where().conjuncts()));
      std::vector<double> values(n, 0.0);
      std::vector<bool> mask(n, false);
      for (size_t row = 0; row < n; ++row) {
        mask[row] = MatchesAll(query.where().conjuncts(), cols, row);
        if (measure != nullptr) values[row] = measure->GetDouble(row);
      }
      OnlineAggregator agg_runner(std::move(values), std::move(mask),
                                  agg.kind);
      const size_t batch = std::max<size_t>(n / 100, 64);
      Estimate current = agg_runner.Current(options.confidence);
      while (!agg_runner.done()) {
        agg_runner.ProcessNext(batch);
        result.rows_scanned += batch;
        current = agg_runner.Current(options.confidence);
        if (options.error_budget > 0 &&
            current.ci_half_width <= options.error_budget) {
          break;
        }
      }
      result.scalar = current;
      result.approximate = !agg_runner.done();
      return result;
    }
    default: {
      std::vector<uint32_t> positions;
      EXPLOREDB_ASSIGN_OR_RETURN(
          positions, SelectPositions(entry, query.where(), options.mode,
                                     &result.rows_scanned));
      Estimate e;
      e.confidence = options.confidence;
      e.sample_size = positions.size();
      switch (agg.kind) {
        case AggKind::kCount:
          e.value = static_cast<double>(positions.size());
          break;
        case AggKind::kSum: {
          double s = 0;
          for (uint32_t row : positions) s += measure->GetDouble(row);
          e.value = s;
          break;
        }
        case AggKind::kAvg: {
          double s = 0;
          for (uint32_t row : positions) s += measure->GetDouble(row);
          e.value = positions.empty()
                        ? 0.0
                        : s / static_cast<double>(positions.size());
          break;
        }
      }
      result.scalar = e;
      return result;
    }
  }
}

}  // namespace exploredb
