#include "engine/steering.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace exploredb {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

Result<CompareOp> ParseOp(const std::string& op) {
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  if (op == "=") return CompareOp::kEq;
  if (op == "!=") return CompareOp::kNe;
  return Status::ParseError("unknown operator '" + op + "'");
}

/// Typed literal for `field`: int64/double parsed, anything else a string.
Result<Value> ParseLiteral(const std::string& text, DataType type) {
  switch (type) {
    case DataType::kInt64: {
      EXPLOREDB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case DataType::kDouble: {
      EXPLOREDB_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case DataType::kString:
      return Value(text);
  }
  return Status::Internal("unhandled type");
}

}  // namespace

Result<Schema> SteeringInterpreter::TableSchema(
    const std::string& table) const {
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                             session_->db()->GetTable(table));
  return entry->schema();
}

Result<Query> SteeringInterpreter::BuildQuery(const State& state) const {
  if (state.table.empty()) {
    return Status::FailedPrecondition("RUN before USE <table>");
  }
  Predicate where;
  if (state.has_window) {
    where.And({state.window_col, CompareOp::kGe, Value(state.lo)});
    where.And({state.window_col, CompareOp::kLt, Value(state.hi)});
  }
  for (const Condition& c : state.filters) where.And(c);
  Query q = Query::On(state.table).Where(std::move(where));
  if (state.agg.has_value()) {
    q.Aggregate(state.agg->kind, state.agg->column);
  } else if (!state.projection.empty()) {
    q.Select(state.projection);
  }
  return q;
}

Result<SteeringTrace> SteeringInterpreter::Run(const std::string& program) {
  SteeringTrace trace;
  State state;
  size_t line_no = 0;
  std::istringstream in(program);
  std::string line;
  auto fail = [&](const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> words = Words(line);
    if (words.empty()) continue;
    std::string cmd = Lower(words[0]);

    if (cmd == "use") {
      if (words.size() != 2) return fail("USE <table>");
      EXPLOREDB_RETURN_NOT_OK(TableSchema(words[1]).status());
      state.table = words[1];
    } else if (cmd == "window") {
      if (words.size() != 4) return fail("WINDOW <column> <lo> <hi>");
      if (state.table.empty()) return fail("WINDOW before USE");
      EXPLOREDB_ASSIGN_OR_RETURN(Schema schema, TableSchema(state.table));
      auto col = schema.FieldIndex(words[1]);
      if (!col.ok()) return fail(col.status().message());
      if (schema.field(col.ValueOrDie()).type != DataType::kInt64) {
        return fail("WINDOW column must be int64");
      }
      auto lo = ParseInt64(words[2]);
      auto hi = ParseInt64(words[3]);
      if (!lo.ok() || !hi.ok()) return fail("WINDOW bounds must be integers");
      state.has_window = true;
      state.window_col = col.ValueOrDie();
      state.lo = lo.ValueOrDie();
      state.hi = hi.ValueOrDie();
    } else if (cmd == "pan") {
      if (!state.has_window) return fail("PAN before WINDOW");
      if (words.size() != 2) return fail("PAN <delta>");
      auto delta = ParseInt64(words[1]);
      if (!delta.ok()) return fail("PAN delta must be an integer");
      state.lo += delta.ValueOrDie();
      state.hi += delta.ValueOrDie();
    } else if (cmd == "zoom") {
      if (!state.has_window) return fail("ZOOM before WINDOW");
      if (words.size() != 2) return fail("ZOOM <factor>");
      auto factor = ParseDouble(words[1]);
      if (!factor.ok() || factor.ValueOrDie() <= 0) {
        return fail("ZOOM factor must be positive");
      }
      double center = (static_cast<double>(state.lo) +
                       static_cast<double>(state.hi)) /
                      2.0;
      double half = (static_cast<double>(state.hi) -
                     static_cast<double>(state.lo)) /
                    2.0 * factor.ValueOrDie();
      half = std::max(half, 0.5);  // never collapse below one unit
      state.lo = static_cast<int64_t>(std::floor(center - half));
      state.hi = static_cast<int64_t>(std::ceil(center + half));
    } else if (cmd == "filter") {
      if (words.size() != 4) return fail("FILTER <column> <op> <value>");
      if (state.table.empty()) return fail("FILTER before USE");
      EXPLOREDB_ASSIGN_OR_RETURN(Schema schema, TableSchema(state.table));
      auto col = schema.FieldIndex(words[1]);
      if (!col.ok()) return fail(col.status().message());
      auto op = ParseOp(words[2]);
      if (!op.ok()) return fail(op.status().message());
      auto value =
          ParseLiteral(words[3], schema.field(col.ValueOrDie()).type);
      if (!value.ok()) return fail(value.status().message());
      state.filters.push_back(
          {col.ValueOrDie(), op.ValueOrDie(), value.ValueOrDie()});
    } else if (cmd == "clear") {
      state.filters.clear();
    } else if (cmd == "mode") {
      if (words.size() != 2) return fail("MODE <mode>");
      std::string mode = Lower(words[1]);
      if (mode == "scan") {
        state.options.mode = ExecutionMode::kScan;
      } else if (mode == "cracking") {
        state.options.mode = ExecutionMode::kCracking;
      } else if (mode == "full-index") {
        state.options.mode = ExecutionMode::kFullIndex;
      } else if (mode == "sampled") {
        state.options.mode = ExecutionMode::kSampled;
      } else if (mode == "online") {
        state.options.mode = ExecutionMode::kOnline;
      } else if (mode == "auto") {
        state.options.mode = ExecutionMode::kAuto;
      } else {
        return fail("unknown mode '" + words[1] + "'");
      }
    } else if (cmd == "sample") {
      if (words.size() != 2) return fail("SAMPLE <fraction>");
      auto fraction = ParseDouble(words[1]);
      if (!fraction.ok() || fraction.ValueOrDie() <= 0 ||
          fraction.ValueOrDie() > 1) {
        return fail("SAMPLE fraction must be in (0, 1]");
      }
      state.options.sample_fraction = fraction.ValueOrDie();
    } else if (cmd == "error") {
      if (words.size() != 2) return fail("ERROR <budget>");
      auto budget = ParseDouble(words[1]);
      if (!budget.ok() || budget.ValueOrDie() < 0) {
        return fail("ERROR budget must be >= 0");
      }
      state.options.error_budget = budget.ValueOrDie();
    } else if (cmd == "agg") {
      if (words.size() < 2 || words.size() > 3) {
        return fail("AGG <avg|sum|count> [column]");
      }
      std::string kind = Lower(words[1]);
      AggregateExpr agg;
      if (kind == "avg") {
        agg.kind = AggKind::kAvg;
      } else if (kind == "sum") {
        agg.kind = AggKind::kSum;
      } else if (kind == "count") {
        agg.kind = AggKind::kCount;
      } else {
        return fail("unknown aggregate '" + words[1] + "'");
      }
      if (words.size() == 3) agg.column = words[2];
      if (agg.kind != AggKind::kCount && agg.column.empty()) {
        return fail("AVG/SUM need a column");
      }
      state.agg = agg;
    } else if (cmd == "select") {
      if (words.size() < 2) return fail("SELECT <col> [col ...]");
      state.projection.assign(words.begin() + 1, words.end());
      state.agg.reset();
    } else if (cmd == "run") {
      EXPLOREDB_ASSIGN_OR_RETURN(Query q, BuildQuery(state));
      EXPLOREDB_ASSIGN_OR_RETURN(Schema schema, TableSchema(state.table));
      trace.executed_sql.push_back(
          (state.agg.has_value()
               ? std::string(AggKindName(state.agg->kind)) + "(" +
                     state.agg->column + ") "
               : std::string("SELECT ")) +
          "FROM " + state.table + " WHERE " + q.where().ToString(schema) +
          " [" + ExecutionModeName(state.options.mode) + "]");
      EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                                 session_->Execute(q, ExecContext(state.options)));
      trace.results.push_back(std::move(result));
    } else {
      return fail("unknown statement '" + words[0] + "'");
    }
  }
  return trace;
}

}  // namespace exploredb
