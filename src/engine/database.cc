#include "engine/database.h"

namespace exploredb {

Result<size_t> TableEntry::NumRows() {
  if (raw_.has_value()) return raw_->NumRows();
  return table_.num_rows();
}

Result<const ColumnVector*> TableEntry::GetColumn(size_t idx) {
  if (idx >= schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(idx));
  }
  if (raw_.has_value()) return raw_->GetColumn(idx);
  return &table_.column(idx);
}

Result<CrackerColumn*> TableEntry::GetCracker(size_t idx) {
  auto it = crackers_.find(idx);
  if (it != crackers_.end()) return it->second.get();
  EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumn(idx));
  if (col->type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "cracking requires an int64 column, '" + schema().field(idx).name +
        "' is " + DataTypeName(col->type()));
  }
  auto cracker = std::make_unique<CrackerColumn>(col->int64_data());
  CrackerColumn* ptr = cracker.get();
  crackers_.emplace(idx, std::move(cracker));
  return ptr;
}

Result<const SortedIndex*> TableEntry::GetSortedIndex(size_t idx) {
  auto it = indexes_.find(idx);
  if (it != indexes_.end()) return it->second.get();
  EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumn(idx));
  if (col->type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "sorted index requires an int64 column, '" +
        schema().field(idx).name + "' is " + DataTypeName(col->type()));
  }
  auto index = std::make_unique<SortedIndex>(col->int64_data());
  const SortedIndex* ptr = index.get();
  indexes_.emplace(idx, std::move(index));
  return ptr;
}

Result<const ZoneMap*> TableEntry::GetZoneMap(size_t idx) {
  auto it = zone_maps_.find(idx);
  if (it != zone_maps_.end()) return it->second.get();
  EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumn(idx));
  if (col->type() == DataType::kString) {
    return Status::InvalidArgument(
        "zone map requires a numeric column, '" + schema().field(idx).name +
        "' is string");
  }
  auto zm = std::make_unique<ZoneMap>(ZoneMap::Build(*col));
  const ZoneMap* ptr = zm.get();
  zone_maps_.emplace(idx, std::move(zm));
  return ptr;
}

Result<const DictEncoded*> TableEntry::GetDict(size_t idx) {
  auto it = dicts_.find(idx);
  if (it != dicts_.end()) return it->second.get();
  EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumn(idx));
  if (col->type() != DataType::kString) {
    return Status::InvalidArgument(
        "dictionary requires a string column, '" + schema().field(idx).name +
        "' is " + DataTypeName(col->type()));
  }
  auto dict = std::make_unique<DictEncoded>(DictEncode(col->string_data()));
  const DictEncoded* ptr = dict.get();
  dicts_.emplace(idx, std::move(dict));
  return ptr;
}

Result<const Table*> TableEntry::Materialized() {
  if (!raw_.has_value()) return &table_;
  // Pull every column through the adaptive loader, then assemble a Table.
  Table full(schema());
  for (size_t c = 0; c < schema().num_fields(); ++c) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, raw_->GetColumn(c));
    *full.mutable_column(c) = *col;
  }
  table_ = std::move(full);
  raw_.reset();
  return &table_;
}

Status Database::CreateTable(const std::string& name, Table table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  tables_.emplace(name, TableEntry(std::move(table)));
  return Status::OK();
}

Status Database::RegisterCsv(const std::string& name, const std::string& path,
                             Schema schema, CsvOptions options) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(RawTable raw,
                             RawTable::Open(path, schema, options));
  tables_.emplace(name, TableEntry(std::move(schema), std::move(raw)));
  return Status::OK();
}

Result<TableEntry*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;
}

}  // namespace exploredb
