#include "engine/database.h"

#include <algorithm>

#include "common/metrics.h"

namespace exploredb {

namespace {

// Cross-session synopsis sharing: how often an adaptive-structure lookup was
// served from an already published instance vs had to build one. A healthy
// multi-session workload converges to hits >> builds (every structure is
// built once, then shared).
Counter* SynopsisHitsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_synopsis_hits_total",
      "Adaptive-structure lookups served from a published instance");
  return c;
}

Counter* SynopsisBuildsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_synopsis_builds_total",
      "Adaptive structures built and published (once per structure)");
  return c;
}

}  // namespace

Result<size_t> TableEntry::NumRows() {
  MutexLock lock(mu_);
  if (raw_.has_value()) return raw_->NumRows();
  return table_.num_rows();
}

Result<const ColumnVector*> TableEntry::GetColumnLocked(size_t idx) {
  if (idx >= schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(idx));
  }
  if (raw_.has_value()) return raw_->GetColumn(idx);
  return &table_.column(idx);
}

Result<const ColumnVector*> TableEntry::GetColumn(size_t idx) {
  MutexLock lock(mu_);
  return GetColumnLocked(idx);
}

TableEntry::BuildSlot* TableEntry::GetBuildSlotLocked(SlotKind kind,
                                                      size_t idx) {
  auto key = std::make_pair(static_cast<int>(kind), idx);
  auto it = build_slots_.find(key);
  if (it == build_slots_.end()) {
    it = build_slots_.emplace(key, std::make_unique<BuildSlot>()).first;
  }
  return it->second.get();
}

// The build-once/publish pattern all four accessors below follow:
//   1. Under mu_: published? return it (hit). Else resolve the base column
//      and the (kind, column) build slot, and release mu_.
//   2. Take the slot mutex (serializes builders of this one structure),
//      re-check under mu_ — a racer may have published while we waited.
//   3. Build outside every table-wide lock (this is the expensive part:
//      copying/sorting/encoding an O(n) column).
//   4. Under mu_: publish. Waiters on the slot find it at their re-check.
// The base-column pointer stays valid across step 3: columns are never
// removed while the entry lives (Materialized() invalidation is the
// documented pre-existing exception and is never raced with queries).

Result<EpochCrackerColumn*> TableEntry::GetCracker(size_t idx) {
  const ColumnVector* col = nullptr;
  BuildSlot* slot = nullptr;
  {
    MutexLock lock(mu_);
    auto it = crackers_.find(idx);
    if (it != crackers_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
    EXPLOREDB_ASSIGN_OR_RETURN(col, GetColumnLocked(idx));
    if (col->type() != DataType::kInt64) {
      return Status::InvalidArgument(
          "cracking requires an int64 column, '" + schema().field(idx).name +
          "' is " + DataTypeName(col->type()));
    }
    slot = GetBuildSlotLocked(SlotKind::kCracker, idx);
  }
  MutexLock build(slot->mu);
  {
    MutexLock lock(mu_);
    auto it = crackers_.find(idx);
    if (it != crackers_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
  }
  auto cracker = std::make_unique<EpochCrackerColumn>(col->int64_data());
  EpochCrackerColumn* ptr = cracker.get();
  MutexLock lock(mu_);
  crackers_.emplace(idx, std::move(cracker));
  SynopsisBuildsCounter()->Add();
  return ptr;
}

Result<const SortedIndex*> TableEntry::GetSortedIndex(size_t idx) {
  const ColumnVector* col = nullptr;
  BuildSlot* slot = nullptr;
  {
    MutexLock lock(mu_);
    auto it = indexes_.find(idx);
    if (it != indexes_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
    EXPLOREDB_ASSIGN_OR_RETURN(col, GetColumnLocked(idx));
    if (col->type() != DataType::kInt64) {
      return Status::InvalidArgument(
          "sorted index requires an int64 column, '" +
          schema().field(idx).name + "' is " + DataTypeName(col->type()));
    }
    slot = GetBuildSlotLocked(SlotKind::kSortedIndex, idx);
  }
  MutexLock build(slot->mu);
  {
    MutexLock lock(mu_);
    auto it = indexes_.find(idx);
    if (it != indexes_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
  }
  auto index = std::make_unique<SortedIndex>(col->int64_data());
  const SortedIndex* ptr = index.get();
  MutexLock lock(mu_);
  indexes_.emplace(idx, std::move(index));
  SynopsisBuildsCounter()->Add();
  return ptr;
}

Result<const ZoneMap*> TableEntry::GetZoneMap(size_t idx) {
  const ColumnVector* col = nullptr;
  BuildSlot* slot = nullptr;
  {
    MutexLock lock(mu_);
    auto it = zone_maps_.find(idx);
    if (it != zone_maps_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
    EXPLOREDB_ASSIGN_OR_RETURN(col, GetColumnLocked(idx));
    if (col->type() == DataType::kString) {
      return Status::InvalidArgument(
          "zone map requires a numeric column, '" + schema().field(idx).name +
          "' is string");
    }
    slot = GetBuildSlotLocked(SlotKind::kZoneMap, idx);
  }
  MutexLock build(slot->mu);
  {
    MutexLock lock(mu_);
    auto it = zone_maps_.find(idx);
    if (it != zone_maps_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
  }
  auto zm = std::make_unique<ZoneMap>(ZoneMap::Build(*col));
  const ZoneMap* ptr = zm.get();
  MutexLock lock(mu_);
  zone_maps_.emplace(idx, std::move(zm));
  SynopsisBuildsCounter()->Add();
  return ptr;
}

Result<const DictEncoded*> TableEntry::GetDict(size_t idx) {
  {
    MutexLock lock(mu_);
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumnLocked(idx));
    if (col->type() != DataType::kString) {
      return Status::InvalidArgument(
          "dictionary requires a string column, '" + schema().field(idx).name +
          "' is " + DataTypeName(col->type()));
    }
  }
  EXPLOREDB_ASSIGN_OR_RETURN(const CompressedColumn* comp,
                             GetCompressed(idx));
  // String columns always carry a dict representation, even with
  // EXPLOREDB_COMPRESS=0 (the policy only gates scanning on codes).
  if (comp == nullptr || comp->str() == nullptr) {
    return Status::Internal("string column " + std::to_string(idx) +
                            " has no dictionary representation");
  }
  return &comp->str()->dict();
}

Result<const CompressedColumn*> TableEntry::GetCompressed(size_t idx) {
  const ColumnVector* col = nullptr;
  BuildSlot* slot = nullptr;
  {
    MutexLock lock(mu_);
    auto it = compressed_.find(idx);
    if (it != compressed_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();  // may be nullptr: cached verdict
    }
    EXPLOREDB_ASSIGN_OR_RETURN(col, GetColumnLocked(idx));
    slot = GetBuildSlotLocked(SlotKind::kCompressed, idx);
  }
  MutexLock build(slot->mu);
  {
    MutexLock lock(mu_);
    auto it = compressed_.find(idx);
    if (it != compressed_.end()) {
      SynopsisHitsCounter()->Add();
      return it->second.get();
    }
  }
  std::unique_ptr<CompressedColumn> built = CompressedColumn::Build(*col);
  const CompressedColumn* ptr = built.get();  // may be nullptr: cached miss
  MutexLock lock(mu_);
  compressed_.emplace(idx, std::move(built));
  SynopsisBuildsCounter()->Add();
  return ptr;
}

Result<const Table*> TableEntry::Materialized() {
  MutexLock lock(mu_);
  if (!raw_.has_value()) return &table_;
  // Pull every column through the adaptive loader, then assemble a Table.
  Table full(schema());
  for (size_t c = 0; c < schema().num_fields(); ++c) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, raw_->GetColumn(c));
    *full.mutable_column(c) = *col;
  }
  table_ = std::move(full);
  raw_.reset();
  return &table_;
}

Status TableEntry::ValidateAdaptiveState() {
  MutexLock lock(mu_);
  for (const auto& [idx, cracker] : crackers_) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumnLocked(idx));
    EXPLOREDB_RETURN_NOT_OK(cracker->Validate(&col->int64_data()));
  }
  for (const auto& [idx, index] : indexes_) {
    const std::vector<int64_t>& sorted = index->sorted_values();
    if (!std::is_sorted(sorted.begin(), sorted.end())) {
      return Status::Internal("sorted index over column " +
                              std::to_string(idx) + " is not sorted");
    }
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumnLocked(idx));
    if (sorted.size() != col->int64_data().size()) {
      return Status::Internal("sorted index over column " +
                              std::to_string(idx) + " has wrong cardinality");
    }
  }
  for (const auto& [idx, zm] : zone_maps_) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumnLocked(idx));
    EXPLOREDB_RETURN_NOT_OK(zm->Validate(col));
  }
  for (const auto& [idx, comp] : compressed_) {
    if (comp == nullptr) continue;  // cached "incompressible" verdict
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col, GetColumnLocked(idx));
    EXPLOREDB_RETURN_NOT_OK(comp->Validate(*col));
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, Table table) {
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  tables_.emplace(name, std::make_unique<TableEntry>(std::move(table)));
  return Status::OK();
}

Status Database::RegisterCsv(const std::string& name, const std::string& path,
                             Schema schema, CsvOptions options) {
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(RawTable raw,
                             RawTable::Open(path, schema, options));
  tables_.emplace(name, std::make_unique<TableEntry>(std::move(schema),
                                                     std::move(raw)));
  return Status::OK();
}

Result<TableEntry*> Database::GetTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;
}

}  // namespace exploredb
