#include "engine/session.h"

#include <cmath>

#include "common/stopwatch.h"

namespace exploredb {

Session::Session(Database* db, SessionOptions options)
    : db_(db),
      options_(options),
      executor_(db),
      cache_(options.cache_capacity) {}

Result<QueryResult> Session::Execute(const Query& query,
                                     const ExecContext& ctx) {
  MutexLock lock(mu_);
  ++stats_.queries;
  Stopwatch total;
  const std::string key = query.CacheKey();

  // Trajectory model learns every issued query (cached or not).
  if (!history_.empty()) trajectory_.Observe(history_.back(), key);
  history_.push_back(key);

  // Only position results of exact selections are cacheable.
  const bool cacheable =
      !query.aggregate().has_value() && !query.group_by().has_value() &&
      ctx.options().mode != ExecutionMode::kSampled &&
      ctx.options().mode != ExecutionMode::kOnline;

  if (cacheable) {
    if (auto cached = cache_.Get(key)) {
      ++stats_.cache_hits;
      QueryResult result;
      result.positions = std::move(*cached);
      result.from_cache = true;
      result.exec_stats.path = AccessPath::kCache;
      // Re-project rows from the cached positions (cheap gather).
      EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                                 db_->GetTable(query.table()));
      std::vector<size_t> cols;
      if (query.select().empty()) {
        for (size_t c = 0; c < entry->schema().num_fields(); ++c) {
          cols.push_back(c);
        }
      } else {
        for (const std::string& name : query.select()) {
          EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                                     entry->schema().FieldIndex(name));
          cols.push_back(idx);
        }
      }
      Table projected(entry->schema().Select(cols));
      for (size_t i = 0; i < cols.size(); ++i) {
        EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                                   entry->GetColumn(cols[i]));
        *projected.mutable_column(i) = col->Gather(result.positions);
      }
      result.rows = std::move(projected);
      result.exec_stats.project_nanos = total.ElapsedNanos();
      if (options_.speculate) {
        SpeculateAround(query, ctx);
        stats_.speculative_queries += speculator_.RunIdle(options_.idle_budget);
      }
      last_table_ = query.table();
      last_predicate_ = query.where();
      result.exec_stats.total_nanos = total.ElapsedNanos();
      result.exec_micros = result.exec_stats.total_nanos / 1000;
      return result;
    }
  }

  EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                             executor_.Execute(query, ctx));
  if (cacheable) cache_.Put(key, result.positions);
  last_table_ = query.table();
  last_predicate_ = query.where();

  if (options_.speculate) {
    SpeculateAround(query, ctx);
    stats_.speculative_queries += speculator_.RunIdle(options_.idle_budget);
  }
  return result;
}

Result<QueryResult> Session::Execute(const QueryBuilder& builder,
                                     const ExecContext& ctx) {
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                             db_->GetTable(builder.table()));
  EXPLOREDB_ASSIGN_OR_RETURN(Query query, builder.Build(entry->schema()));
  return Execute(query, ctx);
}

Result<QueryResult> Session::Execute(const Query& query,
                                     const QueryOptions& options) {
  return Execute(query, ExecContext(options));
}

void Session::SpeculateAround(const Query& query, const ExecContext& ctx) {
  // Momentum speculation on single-column int64 windows: the exploratory
  // idiom "slide the window" makes the adjacent windows the best candidates.
  const auto& conjuncts = query.where().conjuncts();
  if (conjuncts.size() != 2) return;
  const Condition& a = conjuncts[0];
  const Condition& b = conjuncts[1];
  if (a.column != b.column) return;
  if (!(a.op == CompareOp::kGe && b.op == CompareOp::kLt)) return;
  if (!a.constant.is_int64() || !b.constant.is_int64()) return;
  int64_t lo = a.constant.int64();
  int64_t hi = b.constant.int64();
  int64_t width = hi - lo;
  if (width <= 0) return;

  for (int dir : {+1, -1}) {
    Query shifted = Query::On(query.table())
                        .Where(Predicate(
                            {{a.column, CompareOp::kGe,
                              Value(lo + dir * width)},
                             {a.column, CompareOp::kLt,
                              Value(hi + dir * width)}}))
                        .Select(query.select());
    std::string key = shifted.CacheKey();
    if (cache_.Contains(key)) continue;
    // Prefer the direction the trajectory model has seen before.
    double utility = 0.5 + static_cast<double>(dir) * 0.01;
    if (!history_.empty()) {
      utility = trajectory_.TransitionProbability(history_.back(), key);
    }
    ExecContext spec_ctx = ctx;
    speculator_.Enqueue(key, utility, [this, shifted, spec_ctx, key]() {
      auto result = executor_.Execute(shifted, spec_ctx);
      if (result.ok()) {
        cache_.Put(key, std::move(result).ValueOrDie().positions);
      }
    });
  }
}

Result<SeeDbReport> Session::RecommendViews(const std::vector<ViewSpec>& views,
                                            size_t k, SeeDbMode mode) {
  MutexLock lock(mu_);
  if (last_table_.empty()) {
    return Status::FailedPrecondition("no query executed yet");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry, db_->GetTable(last_table_));
  EXPLOREDB_ASSIGN_OR_RETURN(const Table* table, entry->Materialized());
  SeeDbRecommender recommender(table, last_predicate_);
  return recommender.Recommend(views, k, mode);
}

std::vector<std::string> Session::PredictNextQueries(size_t k) const {
  MutexLock lock(mu_);
  if (history_.empty()) return {};
  return trajectory_.PredictNext(history_.back(), k);
}

}  // namespace exploredb
