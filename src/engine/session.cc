#include "engine/session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "obs/journal.h"
#include "obs/slo.h"

namespace exploredb {

namespace {

uint64_t NextSessionId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Session-level counters, aggregated across every Session in the process:
// queries issued, middleware cache hits, and speculative executions drained
// during think time. Per-session counts stay available via stats().
Counter* QueriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_session_queries_total", "Queries issued through sessions");
  return c;
}

Counter* CacheHitsCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_session_cache_hits_total",
      "Session queries answered from the result cache");
  return c;
}

Counter* SpeculativeCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_session_speculative_total",
      "Speculative prefetch queries executed during idle time");
  return c;
}

// Budgeted-planner series shared with planner.cc (the registry dedups by
// name): the cache rung of the plan lattice lives here in the session, so
// cache-served budgeted queries are accounted at the hit site.
Counter* PlannerQueriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_queries_total", "Queries routed through the planner");
  return c;
}

Counter* PlannerCacheChoiceCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_choice_cache_total",
      "Budgeted queries served from the result cache");
  return c;
}

Counter* PlannerBudgetMetCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_budget_met_total",
      "Budgeted queries whose wall time stayed within their latency budget");
  return c;
}

// Per-tenant session series: the unlabeled aggregate counters above stay the
// headline; a tenant-labeled twin is resolved per session so multi-tenant
// traffic can be broken down. nullptr for unlabeled sessions (no tenant) —
// the hot path checks once.
Counter* TenantCounter(const std::string& base, const std::string& tenant,
                       const std::string& help) {
  if (tenant.empty()) return nullptr;
  return Metrics().GetCounter(LabeledMetricName(base, "tenant", tenant),
                              help);
}

}  // namespace

Session::Session(Database* db, SessionOptions options)
    : db_(db),
      id_(NextSessionId()),
      options_(std::move(options)),
      executor_(db),
      owned_cache_(options_.shared_cache == nullptr
                       ? std::make_unique<QueryResultCache>(
                             options_.cache_capacity)
                       : nullptr),
      cache_(options_.shared_cache != nullptr ? options_.shared_cache
                                              : owned_cache_.get()),
      tenant_queries_(TenantCounter(
          "exploredb_session_queries_total", options_.tenant,
          "Queries issued through sessions")),
      tenant_cache_hits_(TenantCounter(
          "exploredb_session_cache_hits_total", options_.tenant,
          "Session queries answered from the result cache")),
      tenant_slo_ok_(TenantCounter(
          "exploredb_slo_tenant_within_budget_total", options_.tenant,
          "Queries within their effective latency budget, by tenant")),
      tenant_slo_breaches_(TenantCounter(
          "exploredb_slo_tenant_breaches_total", options_.tenant,
          "Queries over their effective latency budget, by tenant")) {}

Result<QueryResult> Session::Execute(const Query& query,
                                     const ExecContext& ctx) {
  const int64_t arrival_ns = Tracer::NowNs();
  MutexLock lock(mu_);
  ++stats_.queries;
  QueriesCounter()->Add();
  if (tenant_queries_ != nullptr) tenant_queries_->Add();
  const std::string key = query.CacheKey();

  // Trajectory model learns every issued query (cached or not).
  if (!history_.empty()) trajectory_.Observe(history_.back(), key);
  history_.push_back(key);

  // Only position results of exact selections are cacheable.
  const bool cacheable =
      !query.aggregate().has_value() && !query.group_by().has_value() &&
      ctx.options().mode != ExecutionMode::kSampled &&
      ctx.options().mode != ExecutionMode::kOnline;

  if (cacheable) {
    if (auto cached = cache_->Get(key)) {
      return ServeFromCache(query, ctx, std::move(*cached), arrival_ns);
    }
  }

  EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                             executor_.Execute(query, ctx));
  result.exec_stats.queue_nanos = ctx.queue_nanos();
  if (cacheable) cache_->Put(key, result.positions);
  last_table_ = query.table();
  last_predicate_ = query.where();

  if (options_.speculate) {
    SpeculateAround(query, ctx);
    size_t ran = speculator_.RunIdle(options_.idle_budget);
    stats_.speculative_queries += ran;
    SpeculativeCounter()->Add(ran);
  }
  LogQuery(query, ctx, result, arrival_ns);
  return result;
}

Result<QueryResult> Session::Execute(const QueryBuilder& builder,
                                     const ExecContext& ctx) {
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                             db_->GetTable(builder.table()));
  EXPLOREDB_ASSIGN_OR_RETURN(Query query, builder.Build(entry->schema()));
  return Execute(query, ctx);
}

Result<QueryResult> Session::ServeFromCache(const Query& query,
                                            const ExecContext& ctx,
                                            std::vector<uint32_t> positions,
                                            int64_t arrival_ns) {
  ++stats_.cache_hits;
  CacheHitsCounter()->Add();
  if (tenant_cache_hits_ != nullptr) tenant_cache_hits_->Add();
  const bool tracing = ctx.tracing();
  QueryResult result;
  result.positions = std::move(positions);
  result.from_cache = true;
  result.exec_stats.queue_nanos = ctx.queue_nanos();
  result.exec_stats.path = AccessPath::kCache;
  result.exec_stats.resolved_mode = ctx.options().mode;
  if (ctx.options().mode == ExecutionMode::kBudgeted) {
    // The cache is the cheapest rung of the plan lattice: a fresh hit always
    // wins, always meets the budget, and answers exactly.
    result.exec_stats.planner_choice = PlannerChoice::kCache;
    result.exec_stats.plans_considered = 1;
    PlannerQueriesCounter()->Add();
    PlannerCacheChoiceCounter()->Add();
    PlannerBudgetMetCounter()->Add();
  }
  // The cache hit is still a (cheap) execution: the span doubles as the
  // total-time stopwatch and shows up in traces next to real queries.
  TraceSpan hit_span("cache_hit", tracing, &result.exec_stats.total_nanos);
  {
    // Re-project rows from the cached positions (cheap gather).
    TraceSpan project_span("project", tracing,
                           &result.exec_stats.project_nanos);
    EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                               db_->GetTable(query.table()));
    std::vector<size_t> cols;
    if (query.select().empty()) {
      for (size_t c = 0; c < entry->schema().num_fields(); ++c) {
        cols.push_back(c);
      }
    } else {
      for (const std::string& name : query.select()) {
        EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                                   entry->schema().FieldIndex(name));
        cols.push_back(idx);
      }
    }
    Table projected(entry->schema().Select(cols));
    for (size_t i = 0; i < cols.size(); ++i) {
      EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                                 entry->GetColumn(cols[i]));
      *projected.mutable_column(i) = col->Gather(result.positions);
    }
    result.rows = std::move(projected);
  }
  if (options_.speculate) {
    SpeculateAround(query, ctx);
    size_t ran = speculator_.RunIdle(options_.idle_budget);
    stats_.speculative_queries += ran;
    SpeculativeCounter()->Add(ran);
  }
  last_table_ = query.table();
  last_predicate_ = query.where();
  hit_span.Stop();
  LogQuery(query, ctx, result, arrival_ns);
  return result;
}

Result<QueryResult> Session::ExecuteProgressive(
    const Query& query, const LatencyBudget& budget,
    const ProgressiveCallback& callback, const ExecContext& base) {
  const int64_t arrival_ns = Tracer::NowNs();
  MutexLock lock(mu_);
  ++stats_.queries;
  QueriesCounter()->Add();
  if (tenant_queries_ != nullptr) tenant_queries_->Add();
  ExecContext ctx = base;
  ctx.SetBudget(budget);
  const std::string key = query.CacheKey();

  if (!history_.empty()) trajectory_.Observe(history_.back(), key);
  history_.push_back(key);

  // Only position results of exact selections are cacheable (kBudgeted may
  // degrade aggregates to approximate answers, but selections stay exact).
  const bool cacheable =
      !query.aggregate().has_value() && !query.group_by().has_value();

  if (cacheable) {
    if (auto cached = cache_->Get(key)) {
      EXPLOREDB_ASSIGN_OR_RETURN(
          QueryResult result,
          ServeFromCache(query, ctx, std::move(*cached), arrival_ns));
      if (callback) {
        ProgressiveUpdate update;
        if (result.scalar.has_value()) update.estimate = *result.scalar;
        update.stats = result.exec_stats;
        update.sequence = 0;
        update.final = true;
        callback(update);
      }
      return result;
    }
  }

  EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                             executor_.ExecuteProgressive(query, ctx, callback));
  result.exec_stats.queue_nanos = ctx.queue_nanos();
  if (cacheable) cache_->Put(key, result.positions);
  last_table_ = query.table();
  last_predicate_ = query.where();

  if (options_.speculate) {
    SpeculateAround(query, ctx);
    size_t ran = speculator_.RunIdle(options_.idle_budget);
    stats_.speculative_queries += ran;
    SpeculativeCounter()->Add(ran);
  }
  LogQuery(query, ctx, result, arrival_ns);
  return result;
}

Result<QueryResult> Session::ExecuteProgressive(
    const QueryBuilder& builder, const LatencyBudget& budget,
    const ProgressiveCallback& callback, const ExecContext& base) {
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry,
                             db_->GetTable(builder.table()));
  EXPLOREDB_ASSIGN_OR_RETURN(Query query, builder.Build(entry->schema()));
  return ExecuteProgressive(query, budget, callback, base);
}

void Session::LogQuery(const Query& query, const ExecContext& ctx,
                       const QueryResult& result, int64_t arrival_ns) {
  const ExecutionMode requested = ctx.options().mode;
  const bool analytic =
      query.aggregate().has_value() || query.group_by().has_value();
  const int64_t budget_ns = requested == ExecutionMode::kBudgeted
                                ? ctx.options().budget.latency.count()
                                : 0;
  // The SLO monitor sees every query (alloc-free, independent of logging
  // capacity or journal state). Queue wait is part of the user-visible
  // latency: a query that executed fast but sat in the scheduler's fair
  // queue still missed its interaction budget.
  const QueryClass slo_class = SloMonitor::Classify(requested, analytic);
  const int64_t user_latency_ns =
      result.exec_stats.total_nanos + result.exec_stats.queue_nanos;
  SloMonitor::Global().Observe(slo_class, user_latency_ns, budget_ns,
                               result.approximate,
                               result.exec_stats.achieved_error);
  if (tenant_slo_ok_ != nullptr) {
    // Tenant-labeled twin of the class series: same effective-budget rule
    // the monitor applies (explicit per-query budget, else class default).
    const int64_t effective_ns =
        budget_ns > 0 ? budget_ns : SloMonitor::Global().ClassBudget(slo_class);
    if (effective_ns > 0 && user_latency_ns > effective_ns) {
      tenant_slo_breaches_->Add();
    } else {
      tenant_slo_ok_->Add();
    }
  }

  // arrival_ns is captured before mu_ is acquired, so under concurrent use
  // of one Session it can predate the previous query's finish; clamp to 0 so
  // -1 stays an unambiguous "first query" sentinel.
  const int64_t think_ns =
      last_finish_ns_ < 0 ? -1
                          : std::max<int64_t>(0, arrival_ns - last_finish_ns_);
  if (WorkloadJournal::enabled()) {
    const std::string text = query.CacheKey();
    JournalQueryInfo info;
    info.session_id = id_;
    info.session_seq = journal_seq_;
    info.think_ns = think_ns;
    info.query = &query;
    info.query_text = &text;
    info.requested_mode = requested;
    info.budget_ns = budget_ns;
    info.target_error = ctx.options().budget.target_error;
    info.sample_fraction = ctx.options().sample_fraction;
    info.error_budget = ctx.options().error_budget;
    info.confidence = ctx.options().confidence;
    info.result = &result;
    info.tenant = &options_.tenant;
    JournalQueryExecution(info);
  }
  ++journal_seq_;
  last_finish_ns_ = Tracer::NowNs();

  if (options_.query_log_capacity == 0) return;
  QueryLogEntry entry;
  entry.query = query.CacheKey();
  entry.mode = result.exec_stats.resolved_mode;
  entry.requested_mode = ctx.options().mode;
  entry.from_cache = result.from_cache;
  entry.approximate = result.approximate;
  entry.stats = result.exec_stats;
  entry.wall_time = std::chrono::system_clock::now();
  query_log_.push_back(std::move(entry));
  while (query_log_.size() > options_.query_log_capacity) {
    query_log_.pop_front();
  }
}

Result<std::string> Session::ExplainAnalyze(const Query& query,
                                            const ExecContext& ctx) {
  const int64_t arrival_ns = Tracer::NowNs();
  MutexLock lock(mu_);
  ExecContext traced = ctx;
  traced.SetTrace(true);

  // Scope the snapshot to this execution: everything recorded at or after t0
  // belongs to the traced query (the session lock serializes our own
  // queries; other sessions' spans land on other rings but could interleave,
  // which is why the report groups by the executing thread).
  const int64_t t0 = Tracer::NowNs();
  EXPLOREDB_ASSIGN_OR_RETURN(QueryResult result,
                             executor_.Execute(query, traced));
  std::vector<TraceEvent> events = Tracer::SnapshotSince(t0);

  ++stats_.queries;
  QueriesCounter()->Add();
  if (tenant_queries_ != nullptr) tenant_queries_->Add();
  LogQuery(query, traced, result, arrival_ns);

  std::string out;
  out += "ExplainAnalyze: " + query.CacheKey() + "\n";
  out += "  " + result.exec_stats.Summary() + "\n";
  if (result.exec_stats.compressed_morsels > 0) {
    // The compression story in one line: how much of the scan ran on
    // compressed data and what unpacking the survivors cost (the decompress
    // worker spans below break the same time down per morsel).
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  compression: compressed=%llu/%llu morsels decompress=",
                  static_cast<unsigned long long>(
                      result.exec_stats.compressed_morsels),
                  static_cast<unsigned long long>(
                      result.exec_stats.morsels_dispatched));
    out += buf;
    out += FormatDurationNanos(result.exec_stats.decompress_nanos) + "\n";
  }

  if (events.empty()) {
    out += "  (no trace spans recorded)\n";
    return out;
  }

  // The coordinating thread is the one that recorded the "query" span; its
  // spans form the phase tree. Worker-thread spans (per-morsel work) are
  // summarized as count/avg/max per name.
  uint32_t query_tid = events.front().tid;
  for (const TraceEvent& e : events) {
    if (std::strncmp(e.name, "query", sizeof(e.name)) == 0) {
      query_tid = e.tid;
      break;
    }
  }

  struct NameAgg {
    uint64_t count = 0;
    int64_t total_ns = 0;
    int64_t max_ns = 0;
  };
  // Phase lines keyed by (depth, name) in first-seen order, so repeated
  // same-level spans (online_round per refinement round) collapse into one
  // "xN" line instead of flooding the report.
  std::vector<std::pair<std::pair<uint16_t, std::string>, NameAgg>> phases;
  std::map<std::string, NameAgg> workers;
  for (const TraceEvent& e : events) {
    if (e.tid == query_tid) {
      std::pair<uint16_t, std::string> key{e.depth, e.name};
      NameAgg* agg = nullptr;
      for (auto& p : phases) {
        if (p.first == key) {
          agg = &p.second;
          break;
        }
      }
      if (agg == nullptr) {
        phases.emplace_back(key, NameAgg{});
        agg = &phases.back().second;
      }
      ++agg->count;
      agg->total_ns += e.dur_ns;
      agg->max_ns = std::max(agg->max_ns, e.dur_ns);
    } else {
      NameAgg& agg = workers[e.name];
      ++agg.count;
      agg.total_ns += e.dur_ns;
      agg.max_ns = std::max(agg.max_ns, e.dur_ns);
    }
  }

  out += "  phases:\n";
  for (const auto& [key, agg] : phases) {
    out += "    ";
    out.append(static_cast<size_t>(key.first) * 2, ' ');
    out += key.second;
    if (agg.count > 1) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " x%llu",
                    static_cast<unsigned long long>(agg.count));
      out += buf;
    }
    out += " " + FormatDurationNanos(agg.total_ns);
    if (agg.count > 1) {
      out += " (avg=" +
             FormatDurationNanos(agg.total_ns /
                                 static_cast<int64_t>(agg.count)) +
             " max=" + FormatDurationNanos(agg.max_ns) + ")";
    }
    out += "\n";
  }
  if (!workers.empty()) {
    out += "  worker spans:\n";
    for (const auto& [name, agg] : workers) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " x%llu",
                    static_cast<unsigned long long>(agg.count));
      out += "    " + name + buf + " total=" +
             FormatDurationNanos(agg.total_ns) + " avg=" +
             FormatDurationNanos(agg.total_ns /
                                 static_cast<int64_t>(agg.count)) +
             " max=" + FormatDurationNanos(agg.max_ns) + "\n";
    }
  }
  return out;
}

void Session::SpeculateAround(const Query& query, const ExecContext& ctx) {
  // Momentum speculation on single-column int64 windows: the exploratory
  // idiom "slide the window" makes the adjacent windows the best candidates.
  const auto& conjuncts = query.where().conjuncts();
  if (conjuncts.size() != 2) return;
  const Condition& a = conjuncts[0];
  const Condition& b = conjuncts[1];
  if (a.column != b.column) return;
  if (!(a.op == CompareOp::kGe && b.op == CompareOp::kLt)) return;
  if (!a.constant.is_int64() || !b.constant.is_int64()) return;
  int64_t lo = a.constant.int64();
  int64_t hi = b.constant.int64();
  int64_t width = hi - lo;
  if (width <= 0) return;

  for (int dir : {+1, -1}) {
    Query shifted = Query::On(query.table())
                        .Where(Predicate(
                            {{a.column, CompareOp::kGe,
                              Value(lo + dir * width)},
                             {a.column, CompareOp::kLt,
                              Value(hi + dir * width)}}))
                        .Select(query.select());
    std::string key = shifted.CacheKey();
    if (cache_->Contains(key)) continue;
    // Prefer the direction the trajectory model has seen before.
    double utility = 0.5 + static_cast<double>(dir) * 0.01;
    if (!history_.empty()) {
      utility = trajectory_.TransitionProbability(history_.back(), key);
    }
    ExecContext spec_ctx = ctx;
    speculator_.Enqueue(key, utility, [this, shifted, spec_ctx, key]() {
      auto result = executor_.Execute(shifted, spec_ctx);
      if (result.ok()) {
        cache_->Put(key, std::move(result).ValueOrDie().positions);
      }
    });
  }
}

Result<SeeDbReport> Session::RecommendViews(const std::vector<ViewSpec>& views,
                                            size_t k, SeeDbMode mode) {
  MutexLock lock(mu_);
  if (last_table_.empty()) {
    return Status::FailedPrecondition("no query executed yet");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry, db_->GetTable(last_table_));
  EXPLOREDB_ASSIGN_OR_RETURN(const Table* table, entry->Materialized());
  SeeDbRecommender recommender(table, last_predicate_);
  return recommender.Recommend(views, k, mode);
}

std::vector<std::string> Session::PredictNextQueries(size_t k) const {
  MutexLock lock(mu_);
  if (history_.empty()) return {};
  return trajectory_.PredictNext(history_.back(), k);
}

}  // namespace exploredb
