#ifndef EXPLOREDB_ENGINE_EXECUTOR_H_
#define EXPLOREDB_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/query.h"

namespace exploredb {

class Planner;

/// Executes declarative queries against a Database under a chosen execution
/// mode. The executor is where the tutorial's layers meet: selection paths
/// route through adaptive indexes (cracking), columns stream in through
/// adaptive loading, and approximate modes answer from samples or online
/// aggregation.
///
/// Full-column predicate scans and exact aggregation run morsel-parallel
/// over the ExecContext's thread pool: columns split into fixed-size morsels
/// evaluated into per-morsel buffers that are merged in morsel order, so the
/// result is identical to the serial path for any thread count. Every query
/// returns an ExecStats breakdown inside its QueryResult.
class Executor {
 public:
  explicit Executor(Database* db);
  ~Executor();

  /// Runs `query` under `ctx` (options, deadline, cancellation, pool).
  /// Selections yield positions + projected rows; aggregates yield an
  /// Estimate (exact modes have zero CI width). A cancelled query fails with
  /// kCancelled; an expired deadline fails with kDeadlineExceeded, except in
  /// online-aggregation mode, where the running estimate is returned as an
  /// approximate answer (the AQP contract: a deadline bounds refinement, not
  /// correctness). ExecutionMode::kBudgeted routes through the planner,
  /// which picks the cheapest plan expected to meet ctx.options().budget.
  Result<QueryResult> Execute(const Query& query, const ExecContext& ctx = {});

  /// Resolves a name-based QueryBuilder against the catalog, then executes.
  Result<QueryResult> Execute(const QueryBuilder& builder,
                              const ExecContext& ctx = {});

  /// Budgeted execution with progressive refinement: the planner streams
  /// refining partial answers (monotonically shrinking CIs) through
  /// `callback` until the budget's deadline, then returns the best answer —
  /// whose final delivery it equals bit-identically. `ctx.options().budget`
  /// carries the contract (mode is forced to kBudgeted).
  Result<QueryResult> ExecuteProgressive(const Query& query,
                                         const ExecContext& ctx,
                                         const ProgressiveCallback& callback);

  /// The budgeted planner (exposed for calibration inspection and tests).
  Planner& planner() { return *planner_; }

 private:
  /// An int64 range [lo, hi) extracted from a predicate, plus the conjuncts
  /// the index cannot serve.
  struct RangePlan {
    size_t column;
    int64_t lo;
    int64_t hi;
    std::vector<Condition> residual;
  };

  /// Tries to turn the predicate into a single-column int64 range (the shape
  /// cracking and sorted indexes accelerate).
  static std::optional<RangePlan> ExtractRange(const Predicate& pred,
                                               const Schema& schema,
                                               TableEntry* entry);

  /// Positions matching `pred` under `mode` (kAuto already resolved).
  /// Full scans are morsel-parallel; index paths record which index served
  /// the query in stats->path.
  Result<std::vector<uint32_t>> SelectPositions(TableEntry* entry,
                                                const Predicate& pred,
                                                ExecutionMode mode,
                                                const ExecContext& ctx,
                                                ExecStats* stats);

  /// Exact scalar aggregate over `positions`, morsel-parallel with
  /// deterministic per-morsel partials (identical result for any thread
  /// count, including serial).
  Result<Estimate> AggregatePositions(const std::vector<uint32_t>& positions,
                                      const ColumnVector* measure,
                                      AggKind kind, const ExecContext& ctx,
                                      ExecStats* stats);

  /// Fused scan + scalar aggregate for predicates no index serves: each
  /// morsel filters into a reusable selection vector and reduces it with the
  /// dispatched masked-sum kernels in one pass, never materializing the
  /// full position list. Per-morsel partials merge in morsel order, so the
  /// answer is bit-identical for any thread count and kernel path. When
  /// `measure_comp` is non-null the measure values are gathered out of the
  /// compressed representation (only surviving sub-blocks are decoded)
  /// instead of the raw array — same values, same accumulation order.
  Result<Estimate> ScanAggregate(TableEntry* entry, const Predicate& pred,
                                 const ColumnVector* measure,
                                 const CompressedInt64Column* measure_comp,
                                 AggKind kind, const ExecContext& ctx,
                                 ExecStats* stats);

  Result<QueryResult> ExecuteAggregate(TableEntry* entry, const Query& query,
                                       ExecutionMode mode,
                                       const ExecContext& ctx,
                                       ExecStats* stats);

  Database* db_;
  std::unique_ptr<Planner> planner_;  // owned; defined in planner.h
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_EXECUTOR_H_
