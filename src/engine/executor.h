#ifndef EXPLOREDB_ENGINE_EXECUTOR_H_
#define EXPLOREDB_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/query.h"

namespace exploredb {

/// Executes declarative queries against a Database under a chosen execution
/// mode. The executor is where the tutorial's layers meet: selection paths
/// route through adaptive indexes (cracking), columns stream in through
/// adaptive loading, and approximate modes answer from samples or online
/// aggregation.
class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  /// Runs `query` under `options`. Selections yield positions + projected
  /// rows; aggregates yield an Estimate (exact modes have zero CI width).
  Result<QueryResult> Execute(const Query& query,
                              const QueryOptions& options = {});

 private:
  /// An int64 range [lo, hi) extracted from a predicate, plus the conjuncts
  /// the index cannot serve.
  struct RangePlan {
    size_t column;
    int64_t lo;
    int64_t hi;
    std::vector<Condition> residual;
  };

  /// Tries to turn the predicate into a single-column int64 range (the shape
  /// cracking and sorted indexes accelerate).
  static std::optional<RangePlan> ExtractRange(const Predicate& pred,
                                               const Schema& schema,
                                               TableEntry* entry);

  Result<std::vector<uint32_t>> SelectPositions(TableEntry* entry,
                                                const Predicate& pred,
                                                ExecutionMode mode,
                                                uint64_t* rows_scanned);

  Result<QueryResult> ExecuteAggregate(TableEntry* entry, const Query& query,
                                       const QueryOptions& options);

  Database* db_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_EXECUTOR_H_
