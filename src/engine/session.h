#ifndef EXPLOREDB_ENGINE_SESSION_H_
#define EXPLOREDB_ENGINE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "explore/seedb.h"
#include "prefetch/markov.h"
#include "prefetch/query_cache.h"
#include "prefetch/speculator.h"

namespace exploredb {

/// Session configuration.
struct SessionOptions {
  size_t cache_capacity = 256;
  /// Speculative tasks drained after each user query ("think time" budget).
  size_t idle_budget = 2;
  /// Enable momentum-based speculation of shifted range windows.
  bool speculate = true;
};

/// Aggregated statistics of a session.
struct SessionStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t speculative_queries = 0;
};

/// An interactive exploration session: the integration point of the
/// tutorial's three layers. Every query flows through
///   result cache (middleware) -> executor (engine; cracking / AQP modes)
/// and feeds the trajectory model that drives speculative prefetching of the
/// user's likely next window. Recommendation entry points (SeeDB views)
/// consume the session's current focus.
///
/// Thread safety: the session's mutable state (history, trajectory model,
/// focus, counters) is guarded by mu_; Execute holds it for the query's
/// duration, so a session processes one query at a time — matching the
/// one-user-one-session model — while the Database and cache stay shareable
/// across sessions.
class Session {
 public:
  Session(Database* db, SessionOptions options = {});

  /// Executes a query with caching + speculation around it.
  Result<QueryResult> Execute(const Query& query, const ExecContext& ctx = {})
      EXCLUDES(mu_);

  /// Resolves a name-based QueryBuilder against the catalog, then executes.
  Result<QueryResult> Execute(const QueryBuilder& builder,
                              const ExecContext& ctx = {}) EXCLUDES(mu_);

  /// Deprecated pre-ExecContext signature; kept for one release.
  [[deprecated("wrap the options in an ExecContext")]] Result<QueryResult>
  Execute(const Query& query, const QueryOptions& options);

  /// SeeDB view recommendations where the target subset is the latest
  /// query's predicate.
  Result<SeeDbReport> RecommendViews(const std::vector<ViewSpec>& views,
                                     size_t k,
                                     SeeDbMode mode = SeeDbMode::kSharedScan)
      EXCLUDES(mu_);

  /// Most likely next query keys given the trajectory so far.
  std::vector<std::string> PredictNextQueries(size_t k) const EXCLUDES(mu_);

  /// Counter snapshots / history copy (the session keeps mutating them).
  SessionStats stats() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::vector<std::string> history() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return history_;
  }
  Database* db() const { return db_; }

 private:
  /// Enqueues shifted copies of a single-column range query (pan left/right)
  /// into the speculator.
  void SpeculateAround(const Query& query, const ExecContext& ctx)
      REQUIRES(mu_);

  Database* const db_;
  const SessionOptions options_;
  Executor executor_;
  QueryResultCache cache_;
  mutable Mutex mu_;
  Speculator speculator_ GUARDED_BY(mu_);
  MarkovPredictor trajectory_ GUARDED_BY(mu_);
  std::vector<std::string> history_ GUARDED_BY(mu_);
  std::string last_table_ GUARDED_BY(mu_);
  Predicate last_predicate_ GUARDED_BY(mu_);
  SessionStats stats_ GUARDED_BY(mu_);
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_SESSION_H_
