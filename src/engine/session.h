#ifndef EXPLOREDB_ENGINE_SESSION_H_
#define EXPLOREDB_ENGINE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "explore/seedb.h"
#include "prefetch/markov.h"
#include "prefetch/query_cache.h"
#include "prefetch/speculator.h"

namespace exploredb {

/// Session configuration.
struct SessionOptions {
  size_t cache_capacity = 256;
  /// Speculative tasks drained after each user query ("think time" budget).
  size_t idle_budget = 2;
  /// Enable momentum-based speculation of shifted range windows.
  bool speculate = true;
  /// Ring-buffer capacity of the per-session query log (0 disables logging).
  size_t query_log_capacity = 256;
  /// Tenant this session belongs to: the label on its observability series
  /// (`exploredb_session_*{tenant=...}`), journal records, and the fair-queue
  /// key in the SessionScheduler. Empty means unlabeled (plain series).
  std::string tenant;
  /// Shared cross-session result cache (the serving layer's). When set, this
  /// session reads and writes it instead of owning a private cache —
  /// cache_capacity is ignored — so one session's window result serves every
  /// tenant's identical query. Must outlive the session.
  QueryResultCache* shared_cache = nullptr;
};

/// Aggregated statistics of a session.
struct SessionStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t speculative_queries = 0;
};

/// One entry of the session query log: everything needed to replay or audit
/// an exploration trajectory (the per-interaction latency record IDEBench
/// asks for, and the raw material of session-level workload analysis).
struct QueryLogEntry {
  std::string query;  ///< Query::CacheKey — the canonical query text
  /// The *resolved* execution mode — what the planner / kAuto actually chose
  /// to run (cache hits keep the requested mode; stats.path says kCache).
  /// Auditing planner decisions means comparing this against
  /// `requested_mode`.
  ExecutionMode mode = ExecutionMode::kScan;
  ExecutionMode requested_mode = ExecutionMode::kScan;  ///< what was asked for
  bool from_cache = false;
  bool approximate = false;
  ExecStats stats;  ///< path, rows, morsels, planner provenance, phase nanos
  std::chrono::system_clock::time_point wall_time;  ///< arrival time
};

/// An interactive exploration session: the integration point of the
/// tutorial's three layers. Every query flows through
///   result cache (middleware) -> executor (engine; cracking / AQP modes)
/// and feeds the trajectory model that drives speculative prefetching of the
/// user's likely next window. Recommendation entry points (SeeDB views)
/// consume the session's current focus.
///
/// Thread safety: the session's mutable state (history, trajectory model,
/// focus, counters) is guarded by mu_; Execute holds it for the query's
/// duration, so a session processes one query at a time — matching the
/// one-user-one-session model — while the Database and cache stay shareable
/// across sessions.
class Session {
 public:
  Session(Database* db, SessionOptions options = {});

  /// Executes a query with caching + speculation around it.
  Result<QueryResult> Execute(const Query& query, const ExecContext& ctx = {})
      EXCLUDES(mu_);

  /// Resolves a name-based QueryBuilder against the catalog, then executes.
  Result<QueryResult> Execute(const QueryBuilder& builder,
                              const ExecContext& ctx = {}) EXCLUDES(mu_);

  /// Budgeted execution with progressive refinement: every query gets a
  /// latency contract. The planner picks the cheapest plan expected to meet
  /// `budget` (cache hit -> pruned exact scan -> sample -> online agg); when
  /// nothing exact fits, refining partials stream through `callback`
  /// (monotonically shrinking CIs; the final delivery equals the returned
  /// result bit-identically) until the deadline. The callback runs on the
  /// session's thread under its lock — it must not re-enter the session.
  /// `base` supplies pool/morsel/trace settings; its mode is overridden.
  Result<QueryResult> ExecuteProgressive(const Query& query,
                                         const LatencyBudget& budget,
                                         const ProgressiveCallback& callback,
                                         const ExecContext& base = {})
      EXCLUDES(mu_);

  /// QueryBuilder convenience overload of ExecuteProgressive.
  Result<QueryResult> ExecuteProgressive(const QueryBuilder& builder,
                                         const LatencyBudget& budget,
                                         const ProgressiveCallback& callback,
                                         const ExecContext& base = {})
      EXCLUDES(mu_);

  /// Executes `query` with trace-span recording forced on and returns an
  /// annotated per-phase / per-morsel breakdown (plus the result's ExecStats
  /// summary). Runs on the executor directly — no cache, no speculation — so
  /// the report reflects one clean execution. Works whether or not
  /// process-wide tracing (EXPLOREDB_TRACE) is enabled.
  Result<std::string> ExplainAnalyze(const Query& query,
                                     const ExecContext& ctx = {})
      EXCLUDES(mu_);

  /// SeeDB view recommendations where the target subset is the latest
  /// query's predicate.
  Result<SeeDbReport> RecommendViews(const std::vector<ViewSpec>& views,
                                     size_t k,
                                     SeeDbMode mode = SeeDbMode::kSharedScan)
      EXCLUDES(mu_);

  /// Most likely next query keys given the trajectory so far.
  std::vector<std::string> PredictNextQueries(size_t k) const EXCLUDES(mu_);

  /// Counter snapshots / history copy (the session keeps mutating them).
  SessionStats stats() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  CacheStats cache_stats() const { return cache_->stats(); }
  std::vector<std::string> history() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return history_;
  }
  /// Chronological copy of the query log ring (oldest first; at most
  /// SessionOptions::query_log_capacity entries).
  std::vector<QueryLogEntry> QueryLog() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return {query_log_.begin(), query_log_.end()};
  }
  Database* db() const { return db_; }

  /// Process-unique session number — the `sid` of this session's workload
  /// journal records.
  uint64_t id() const { return id_; }

  /// The tenant label this session carries (SessionOptions::tenant).
  const std::string& tenant() const { return options_.tenant; }

 private:
  /// Serves a cached position list: re-projects rows, stamps cache
  /// provenance (and planner provenance when the query ran budgeted), runs
  /// speculation, and logs the query. `arrival_ns` is the Tracer::NowNs()
  /// timestamp captured when the user's call entered the session (think-time
  /// accounting).
  Result<QueryResult> ServeFromCache(const Query& query, const ExecContext& ctx,
                                     std::vector<uint32_t> positions,
                                     int64_t arrival_ns) REQUIRES(mu_);

  /// Enqueues shifted copies of a single-column range query (pan left/right)
  /// into the speculator.
  void SpeculateAround(const Query& query, const ExecContext& ctx)
      REQUIRES(mu_);

  /// The single emission point for everything that observes finished
  /// queries: the SLO monitor and workload journal (always), then the
  /// ring-buffered query log (when enabled). `arrival_ns` — see
  /// ServeFromCache.
  void LogQuery(const Query& query, const ExecContext& ctx,
                const QueryResult& result, int64_t arrival_ns) REQUIRES(mu_);

  Database* const db_;
  const uint64_t id_;  ///< process-unique session number
  const SessionOptions options_;
  // NOLINT-exploredb(guarded-by): internally synchronized (owns its pool).
  Executor executor_;
  // NOLINT-exploredb(guarded-by): set in the constructor, never reassigned.
  std::unique_ptr<QueryResultCache> owned_cache_;
  /// The cache queries go through: options_.shared_cache when set (the
  /// serving layer's cross-session cache), else owned_cache_. Internally
  /// synchronized (sharded mutexes).
  QueryResultCache* const cache_;
  /// Per-tenant observability series, resolved once against the registry
  /// (LabeledMetricName) so the hot path is a relaxed shard add. Const
  /// pointers; the counters live for the process lifetime.
  Counter* const tenant_queries_;
  Counter* const tenant_cache_hits_;
  /// Per-tenant SLO series: queries whose user-visible latency (execution +
  /// queue wait) stayed within / breached the effective budget.
  Counter* const tenant_slo_ok_;
  Counter* const tenant_slo_breaches_;
  mutable Mutex mu_;
  Speculator speculator_ GUARDED_BY(mu_);
  MarkovPredictor trajectory_ GUARDED_BY(mu_);
  std::vector<std::string> history_ GUARDED_BY(mu_);
  std::deque<QueryLogEntry> query_log_ GUARDED_BY(mu_);
  std::string last_table_ GUARDED_BY(mu_);
  Predicate last_predicate_ GUARDED_BY(mu_);
  SessionStats stats_ GUARDED_BY(mu_);
  /// Tracer::NowNs() when the previous query finished: the gap to the next
  /// arrival is the journaled think time. -1 before the first query.
  int64_t last_finish_ns_ GUARDED_BY(mu_) = -1;
  uint64_t journal_seq_ GUARDED_BY(mu_) = 0;  ///< next session_seq to emit
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_SESSION_H_
