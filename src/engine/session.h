#ifndef EXPLOREDB_ENGINE_SESSION_H_
#define EXPLOREDB_ENGINE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "explore/seedb.h"
#include "prefetch/markov.h"
#include "prefetch/query_cache.h"
#include "prefetch/speculator.h"

namespace exploredb {

/// Session configuration.
struct SessionOptions {
  size_t cache_capacity = 256;
  /// Speculative tasks drained after each user query ("think time" budget).
  size_t idle_budget = 2;
  /// Enable momentum-based speculation of shifted range windows.
  bool speculate = true;
};

/// Aggregated statistics of a session.
struct SessionStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t speculative_queries = 0;
};

/// An interactive exploration session: the integration point of the
/// tutorial's three layers. Every query flows through
///   result cache (middleware) -> executor (engine; cracking / AQP modes)
/// and feeds the trajectory model that drives speculative prefetching of the
/// user's likely next window. Recommendation entry points (SeeDB views)
/// consume the session's current focus.
class Session {
 public:
  Session(Database* db, SessionOptions options = {});

  /// Executes a query with caching + speculation around it.
  Result<QueryResult> Execute(const Query& query, const ExecContext& ctx = {});

  /// Resolves a name-based QueryBuilder against the catalog, then executes.
  Result<QueryResult> Execute(const QueryBuilder& builder,
                              const ExecContext& ctx = {});

  /// Deprecated pre-ExecContext signature; kept for one release.
  [[deprecated("wrap the options in an ExecContext")]] Result<QueryResult>
  Execute(const Query& query, const QueryOptions& options);

  /// SeeDB view recommendations where the target subset is the latest
  /// query's predicate.
  Result<SeeDbReport> RecommendViews(const std::vector<ViewSpec>& views,
                                     size_t k,
                                     SeeDbMode mode = SeeDbMode::kSharedScan);

  /// Most likely next query keys given the trajectory so far.
  std::vector<std::string> PredictNextQueries(size_t k) const;

  const SessionStats& stats() const { return stats_; }
  const CacheStats& cache_stats() const { return cache_.stats(); }
  const std::vector<std::string>& history() const { return history_; }
  Database* db() const { return db_; }

 private:
  /// Enqueues shifted copies of a single-column range query (pan left/right)
  /// into the speculator.
  void SpeculateAround(const Query& query, const ExecContext& ctx);

  Database* db_;
  SessionOptions options_;
  Executor executor_;
  QueryResultCache cache_;
  Speculator speculator_;
  MarkovPredictor trajectory_;
  std::vector<std::string> history_;
  std::string last_table_;
  Predicate last_predicate_;
  SessionStats stats_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_SESSION_H_
