#include "engine/group_by.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/thread_pool.h"
#include "simd/simd.h"

namespace exploredb {

namespace {

/// Per-group running aggregate: enough state for COUNT/SUM/AVG exactly.
struct Acc {
  double sum = 0.0;
  uint64_t count = 0;
};

/// Widest int64 key domain served by the dense-array fast path.
constexpr uint64_t kDenseDomainLimit = uint64_t{1} << 16;
/// Total dense accumulator budget across all morsel partials (entries);
/// beyond it the sparse hash path is cheaper than zero-filling.
constexpr size_t kDenseBudget = size_t{4} << 20;

Estimate FinishGroup(const Acc& acc, AggKind kind, double confidence) {
  Estimate e;
  e.confidence = confidence;
  e.sample_size = acc.count;
  switch (kind) {
    case AggKind::kCount:
      e.value = static_cast<double>(acc.count);
      break;
    case AggKind::kSum:
      e.value = acc.sum;
      break;
    case AggKind::kAvg:
      e.value = acc.count == 0 ? 0.0
                               : acc.sum / static_cast<double>(acc.count);
      break;
  }
  return e;
}

Status InterruptedStatus(const ExecContext& ctx) {
  return ctx.cancelled() ? Status::Cancelled("query cancelled")
                         : Status::DeadlineExceeded("query deadline exceeded");
}

/// Runs body(begin, end, &partials[m]) over morsels of `count` items — on
/// the pool when available, inline otherwise — and returns the per-morsel
/// partial tables. `proto` seeds each partial (dense paths pre-size here).
template <typename Partial, typename Body>
std::vector<Partial> MorselPartials(size_t count, const ExecContext& ctx,
                                    ExecStats* stats, const Partial& proto,
                                    const Body& body) {
  const size_t morsel = std::max<size_t>(1, ctx.morsel_size());
  const size_t num_morsels = count == 0 ? 0 : (count + morsel - 1) / morsel;
  std::vector<Partial> parts(num_morsels, proto);
  const bool tracing = ctx.tracing();
  auto run = [&](size_t m) {
    if (ctx.Interrupted()) return;
    TraceSpan span("groupby_morsel", tracing);
    body(m * morsel, std::min(count, m * morsel + morsel), &parts[m]);
  };
  ThreadPool* pool = ctx.thread_pool();
  if (pool != nullptr && num_morsels > 1) {
    ThreadPool::ForStats fs = pool->ParallelFor(num_morsels, run);
    stats->morsels_dispatched += fs.chunks;
    stats->threads_used = std::max(stats->threads_used, fs.threads_used);
  } else {
    for (size_t m = 0; m < num_morsels; ++m) run(m);
    stats->morsels_dispatched += num_morsels;
  }
  return parts;
}

/// Double group keys hash by bit pattern; collapse every NaN payload onto
/// one canonical pattern so all NaNs land in a single group (as the old
/// string-keyed accumulator did via "nan").
uint64_t DoubleKeyBits(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Result<std::vector<GroupValue>> HashGroupBy(
    const ColumnVector& keys, const DictEncoded* dict,
    const ColumnVector* measure, AggKind kind, double confidence,
    const std::vector<uint32_t>& positions,
    std::optional<std::pair<int64_t, int64_t>> key_range,
    const ExecContext& ctx, ExecStats* stats) {
  std::vector<GroupValue> out;
  if (positions.empty()) return out;

  const double* mdbl =
      measure != nullptr && measure->type() == DataType::kDouble
          ? measure->double_data().data()
          : nullptr;
  const int64_t* mi64 =
      measure != nullptr && measure->type() == DataType::kInt64
          ? measure->int64_data().data()
          : nullptr;
  const bool has_measure = measure != nullptr;
  auto measure_at = [&](uint32_t row) {
    return mdbl != nullptr ? mdbl[row] : static_cast<double>(mi64[row]);
  };

  const size_t morsel = std::max<size_t>(1, ctx.morsel_size());
  const size_t num_morsels = (positions.size() + morsel - 1) / morsel;
  const uint32_t* pos = positions.data();

  // Accumulated (display key, aggregate) pairs, order fixed up at the end.
  std::vector<std::pair<std::string, Acc>> flat;

  // Dense path shared by dictionary codes and narrow int64 domains:
  // per-morsel Acc arrays indexed by `code(row)`, folded in morsel order.
  // `code_array` (non-null for dictionary keys) unlocks the gathered block
  // loop: codes — and double measures — are fetched through the dispatched
  // gather kernels a block at a time, then accumulated in the original row
  // order, so the sums are bit-identical to the row-at-a-time loop.
  auto run_dense = [&](size_t span, auto code, auto display,
                       const uint32_t* code_array) -> Status {
    const simd::KernelTable& kt = simd::ActiveKernels();
    std::vector<std::vector<Acc>> parts = MorselPartials(
        positions.size(), ctx, stats, std::vector<Acc>(span),
        [&](size_t begin, size_t end, std::vector<Acc>* t) {
          Acc* accs = t->data();
          if (code_array != nullptr) {
            constexpr size_t kBlock = 128;
            uint32_t code_buf[kBlock];
            double val_buf[kBlock];
            for (size_t i = begin; i < end; i += kBlock) {
              const auto blk = static_cast<uint32_t>(std::min(kBlock, end - i));
              kt.gather_u32(code_array, pos + i, blk, code_buf);
              if (mdbl != nullptr) kt.gather_f64(mdbl, pos + i, blk, val_buf);
              for (uint32_t j = 0; j < blk; ++j) {
                Acc& a = accs[code_buf[j]];
                ++a.count;
                if (mdbl != nullptr) {
                  a.sum += val_buf[j];
                } else if (has_measure) {
                  a.sum += measure_at(pos[i + j]);
                }
              }
            }
            return;
          }
          for (size_t i = begin; i < end; ++i) {
            const uint32_t row = pos[i];
            Acc& a = accs[code(row)];
            ++a.count;
            if (has_measure) a.sum += measure_at(row);
          }
        });
    if (ctx.Interrupted()) return InterruptedStatus(ctx);
    std::vector<Acc> merged(span);
    for (const std::vector<Acc>& p : parts) {
      for (size_t k = 0; k < span; ++k) {
        merged[k].sum += p[k].sum;
        merged[k].count += p[k].count;
      }
    }
    for (size_t k = 0; k < span; ++k) {
      if (merged[k].count != 0) flat.emplace_back(display(k), merged[k]);
    }
    return Status::OK();
  };

  // Sparse path: per-morsel hash tables over an integral key image.
  auto run_sparse = [&](auto code, auto display) -> Status {
    using Key = decltype(code(uint32_t{0}));
    using Table = std::unordered_map<Key, Acc>;
    std::vector<Table> parts = MorselPartials(
        positions.size(), ctx, stats, Table{},
        [&](size_t begin, size_t end, Table* t) {
          for (size_t i = begin; i < end; ++i) {
            const uint32_t row = pos[i];
            Acc& a = (*t)[code(row)];
            ++a.count;
            if (has_measure) a.sum += measure_at(row);
          }
        });
    if (ctx.Interrupted()) return InterruptedStatus(ctx);
    // Distinct keys are independent, so per-key fold order across morsels
    // (morsel order) is all that determinism needs.
    Table merged;
    for (const Table& p : parts) {
      for (const auto& [k, a] : p) {
        Acc& m = merged[k];
        m.sum += a.sum;
        m.count += a.count;
      }
    }
    flat.reserve(merged.size());
    for (const auto& [k, a] : merged) flat.emplace_back(display(k), a);
    return Status::OK();
  };

  Status st = Status::OK();
  switch (keys.type()) {
    case DataType::kString: {
      if (dict == nullptr) {
        return Status::InvalidArgument(
            "string group-by requires a dictionary-encoded key column");
      }
      const uint32_t* codes = dict->codes.data();
      const size_t span = dict->values.size();
      if (span > 0 && span * num_morsels <= kDenseBudget) {
        st = run_dense(
            span, [&](uint32_t row) { return codes[row]; },
            [&](size_t k) { return dict->values[k]; }, codes);
      } else {
        st = run_sparse([&](uint32_t row) { return codes[row]; },
                        [&](uint32_t k) { return dict->values[k]; });
      }
      break;
    }
    case DataType::kInt64: {
      const int64_t* kd = keys.int64_data().data();
      bool dense = false;
      int64_t lo = 0;
      uint64_t span = 0;
      if (key_range.has_value() && key_range->first <= key_range->second) {
        lo = key_range->first;
        span = static_cast<uint64_t>(key_range->second) -
               static_cast<uint64_t>(lo) + 1;
        dense = span <= kDenseDomainLimit && span * num_morsels <= kDenseBudget;
      }
      if (dense) {
        st = run_dense(
            static_cast<size_t>(span),
            [&](uint32_t row) { return static_cast<size_t>(kd[row] - lo); },
            [&](size_t k) { return std::to_string(lo + static_cast<int64_t>(k)); },
            nullptr);
      } else {
        st = run_sparse([&](uint32_t row) { return kd[row]; },
                        [](int64_t k) { return std::to_string(k); });
      }
      break;
    }
    case DataType::kDouble: {
      const double* kd = keys.double_data().data();
      st = run_sparse([&](uint32_t row) { return DoubleKeyBits(kd[row]); },
                      [](uint64_t k) {
                        return Value(DoubleFromBits(k)).ToString();
                      });
      break;
    }
  }
  if (!st.ok()) return st;

  // Match the historical std::map<std::string, Acc> accumulator: groups
  // come out sorted by display key.
  std::sort(flat.begin(), flat.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.reserve(flat.size());
  for (const auto& [key, acc] : flat) {
    out.push_back({key, FinishGroup(acc, kind, confidence)});
  }
  return out;
}

}  // namespace exploredb
