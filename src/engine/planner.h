#ifndef EXPLOREDB_ENGINE_PLANNER_H_
#define EXPLOREDB_ENGINE_PLANNER_H_

#include <chrono>
#include <cstdint>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "engine/query.h"

namespace exploredb {

class Database;
class Executor;
class TableEntry;

/// Self-calibrating per-row cost model. Seeded with conservative constants,
/// then updated (EWMA) from every budgeted execution's observed ExecStats, so
/// the planner's estimates converge on this machine's — and this table's —
/// real throughput after a handful of queries. All rates are nanoseconds per
/// row; `cv` is the running coefficient-of-variation estimate that turns a
/// sample size into a predicted relative CI half-width.
class CostModel {
 public:
  /// Predicted wall cost of an exact (zone-map pruned, possibly indexed)
  /// scan-aggregate over `rows` live rows. `compressed` selects the
  /// per-representation rate: compressed scans filter on packed words / run
  /// headers and decode only survivors, so their ns/row calibrates
  /// separately from the raw-column rate.
  double ExactCostNs(uint64_t rows, bool compressed = false) const
      EXCLUDES(mu_);
  /// Predicted wall cost of the row-at-a-time uniform-sample path over
  /// `rows` sampled rows.
  double SampleCostNs(uint64_t rows) const EXCLUDES(mu_);
  /// Predicted wall cost of materializing online-aggregation input (mask +
  /// widened measure) over `rows` rows, plus consuming `consumed` of them.
  double OnlineCostNs(uint64_t rows, uint64_t consumed) const EXCLUDES(mu_);
  /// Predicted relative CI half-width from `sample_rows` matching rows at
  /// `confidence` (z * cv / sqrt(m), the CLT promise under the current cv).
  double PredictRelativeError(uint64_t sample_rows, double confidence) const
      EXCLUDES(mu_);

  /// How many rows the online aggregator can consume in `ns` after paying
  /// its input-build cost over `rows` rows (0 when even the build does not
  /// fit).
  uint64_t OnlineRowsWithin(double ns, uint64_t rows) const EXCLUDES(mu_);

  // -- Calibration (called by the planner after each budgeted execution) ----
  /// `compressed` routes the observation to the representation that actually
  /// served the scan (ExecStats::compressed_morsels > 0).
  void ObserveExact(uint64_t rows, int64_t nanos, bool compressed = false)
      EXCLUDES(mu_);
  void ObserveSample(uint64_t rows, int64_t nanos) EXCLUDES(mu_);
  void ObserveOnline(uint64_t rows, uint64_t consumed, int64_t nanos)
      EXCLUDES(mu_);
  /// Feeds a realized (relative CI, sample size) pair back into the cv
  /// estimate.
  void ObserveRelativeError(double relative_error, uint64_t sample_rows,
                            double confidence) EXCLUDES(mu_);

  // -- Test hooks ----------------------------------------------------------
  /// Pins the exact-scan rates (raw and compressed), e.g. absurdly high to
  /// force the planner off the exact plan deterministically.
  void SetExactNsPerRowForTest(double ns_per_row) EXCLUDES(mu_);
  double exact_ns_per_row() const EXCLUDES(mu_);
  double exact_compressed_ns_per_row() const EXCLUDES(mu_);

 private:
  static constexpr double kAlpha = 0.3;  ///< EWMA weight of new observations

  mutable Mutex mu_;
  // Seeds are deliberately pessimistic for the approximate paths and
  // realistic for the vectorized exact path; calibration replaces them after
  // the first few queries either way.
  double exact_ns_per_row_ GUARDED_BY(mu_) = 1.0;
  // Compressed scans skip whole blocks/runs before touching row data; seeded
  // slightly under the raw rate, calibrated independently.
  double exact_compressed_ns_per_row_ GUARDED_BY(mu_) = 0.8;
  double sample_ns_per_row_ GUARDED_BY(mu_) = 25.0;
  double online_build_ns_per_row_ GUARDED_BY(mu_) = 6.0;
  double online_ns_per_row_ GUARDED_BY(mu_) = 12.0;
  double cv_ GUARDED_BY(mu_) = 1.0;
};

/// The budgeted planner: given a Query and a LatencyBudget, estimates
/// candidate-plan costs from what the engine already knows — zone-map
/// selectivity and prunable zones, the calibrated per-row rates above, sample
/// sizes, online-aggregation round cost — and picks the cheapest plan
/// expected to meet the budget, walking the lattice
///
///   cache hit -> pruned exact scan -> uniform-sample estimate -> online agg
///
/// (the cache rung lives in Session, which consults its result cache before
/// the planner runs). When no exact plan fits and a ProgressiveCallback is
/// given, refining partials stream through it until the deadline; the best
/// answer so far is returned with achieved vs promised error recorded in
/// ExecStats. Budgeted aggregate queries never fail with kDeadlineExceeded:
/// an exact plan that blows its deadline is rescued by a small-sample rerun.
///
/// Thread safety: stateless apart from the CostModel (internally locked); one
/// Planner instance serves all of an Executor's queries concurrently.
class Planner {
 public:
  Planner(Database* db, Executor* executor) : db_(db), executor_(executor) {}

  /// Plans and executes `query` under `ctx` (whose options().budget carries
  /// the contract). `callback`, when non-null, receives progressive
  /// deliveries; pass nullptr for a single-shot budgeted answer.
  Result<QueryResult> Execute(const Query& query, const ExecContext& ctx,
                              const ProgressiveCallback* callback);

  CostModel& cost_model() { return cost_model_; }

 private:
  /// Estimated rows surviving zone-map pruning and the predicate's estimated
  /// selectivity (both under the zone maps' uniform-within-zone model).
  struct ScanEstimate {
    uint64_t live_rows = 0;     ///< rows in zones the predicate may match
    double selectivity = 1.0;   ///< estimated matching fraction
    /// True when some conjunct will be served by a compressed representation
    /// (selects the compressed exact-scan rate; the selectivity above then
    /// also uses the sharper per-block/RLE-exact model).
    bool compressed = false;
  };
  Result<ScanEstimate> EstimateScan(TableEntry* entry, const Query& query,
                                    uint64_t n, bool use_compression);

  /// Runs the online-aggregation loop, streaming monotone deliveries through
  /// `callback` (if any) until the deadline / target error / exhaustion.
  Result<QueryResult> RunProgressive(
      TableEntry* entry, const Query& query, const ExecContext& ctx,
      std::chrono::steady_clock::time_point deadline,
      const ProgressiveCallback* callback, ExecStats stats);

  Database* db_;
  Executor* executor_;
  CostModel cost_model_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_PLANNER_H_
