#ifndef EXPLOREDB_ENGINE_GROUP_BY_H_
#define EXPLOREDB_ENGINE_GROUP_BY_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "storage/column.h"

namespace exploredb {

/// Exact grouped aggregation over `positions`, morsel-parallel with
/// deterministic merge: each morsel of positions accumulates a private
/// partial table and the partials are folded in morsel order, so the result
/// is identical (bit-identical doubles included) for any thread count.
///
/// Keys are typed, never stringified per row:
///  - int64   — dense accumulator array when `key_range` (usually the
///              column's zone-map min/max) spans a small domain, open-
///              addressed hash otherwise;
///  - double  — hashed by bit pattern;
///  - string  — dense array over dictionary codes (`dict` is required and
///              must encode the key column).
/// Display strings are produced only at result build, and the output is
/// sorted by display key — the same ordering the historical
/// `std::map<std::string, Acc>` accumulator produced.
///
/// `measure` may be null (COUNT). `stats` receives morsel dispatch counts;
/// `confidence` is copied into each group's Estimate. Exact answers carry a
/// zero CI width.
Result<std::vector<GroupValue>> HashGroupBy(
    const ColumnVector& keys, const DictEncoded* dict,
    const ColumnVector* measure, AggKind kind, double confidence,
    const std::vector<uint32_t>& positions,
    std::optional<std::pair<int64_t, int64_t>> key_range,
    const ExecContext& ctx, ExecStats* stats);

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_GROUP_BY_H_
