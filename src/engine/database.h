#ifndef EXPLOREDB_ENGINE_DATABASE_H_
#define EXPLOREDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "cracking/baselines.h"
#include "cracking/cracker_column.h"
#include "cracking/updates.h"
#include "loading/raw_table.h"
#include "storage/compression/compressed_column.h"
#include "storage/table.h"
#include "storage/zone_map.h"

namespace exploredb {

/// A named table plus the adaptive infrastructure the engine grows around it
/// while queries run: per-column crackers and sorted indexes, created lazily
/// on first use (the "index as a side effect of querying" principle).
///
/// Thread safety (the serving-layer contract, DESIGN.md §2i): every adaptive
/// structure is built once and *published* — the table mutex mu_ only guards
/// the lookup maps, never an expensive build. A miss resolves a per-
/// (structure, column) build slot, releases mu_, serializes builders on the
/// slot's mutex (double-checked: late arrivals find the published instance
/// and return it), builds outside any table-wide lock, then re-takes mu_ to
/// publish. Concurrent sessions racing to create the same zone map /
/// dictionary / index get one instance, with no thundering-herd rebuilds and
/// no reader stalled behind another column's build. Published pointers are
/// stable for the entry's lifetime. Crackers are EpochCrackerColumn — they
/// serialize their own reorganizations internally, so no caller-side
/// serialization is needed.
class TableEntry {
 public:
  explicit TableEntry(Table table)
      : schema_(table.schema()), table_(std::move(table)) {}
  TableEntry(Schema schema, RawTable raw)
      : schema_(schema), table_(Table(std::move(schema))), raw_(std::move(raw)) {}

  /// Immutable after construction, so readable without the lock.
  const Schema& schema() const { return schema_; }

  /// Row count (tokenizes a raw-backed table on first call).
  Result<size_t> NumRows() EXCLUDES(mu_);

  /// The column, adaptively loading it from the raw file when raw-backed.
  Result<const ColumnVector*> GetColumn(size_t idx) EXCLUDES(mu_);

  /// Lazily created epoch-published cracker over an int64 column. The
  /// returned cracker is internally synchronized: converged reads run
  /// concurrently under its shared lock, cracking serializes and publishes a
  /// new piece-layout epoch.
  Result<EpochCrackerColumn*> GetCracker(size_t idx) EXCLUDES(mu_);

  /// Lazily created fully sorted index over an int64 column.
  Result<const SortedIndex*> GetSortedIndex(size_t idx) EXCLUDES(mu_);

  /// Lazily built per-zone min/max synopsis over a numeric column; scans
  /// consult it to skip morsels a predicate cannot match.
  Result<const ZoneMap*> GetZoneMap(size_t idx) EXCLUDES(mu_);

  /// Dictionary encoding of a string column, served from the first-class
  /// compressed representation (hash group-by keys by dense code instead of
  /// by string).
  Result<const DictEncoded*> GetDict(size_t idx) EXCLUDES(mu_);

  /// Lazily built compressed representation of a column. Returns nullptr
  /// (not an error) when the column has none — doubles, or int64 columns the
  /// adaptive policy judged incompressible; the verdict is cached so the
  /// encode cost is paid at most once per column.
  Result<const CompressedColumn*> GetCompressed(size_t idx) EXCLUDES(mu_);

  /// Fully materialized Table view (loads every raw column).
  Result<const Table*> Materialized() EXCLUDES(mu_);

  bool raw_backed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return raw_.has_value();
  }

  /// Deep-validates every adaptive structure this entry has built so far
  /// (crackers, zone maps, dictionaries) against the base column data.
  /// O(rows x structures); run from tests and, behind EXPLOREDB_VALIDATE=1,
  /// after every query (see Executor::Execute).
  Status ValidateAdaptiveState() EXCLUDES(mu_);

 private:
  /// Which adaptive structure a build slot serializes construction of.
  enum class SlotKind { kCracker, kSortedIndex, kZoneMap, kCompressed };
  /// One mutex per (structure kind, column): builders of the same structure
  /// serialize here, *outside* mu_, so the table stays readable during an
  /// expensive build and late racers wait for the publish instead of
  /// rebuilding. Slots are never removed; pointers stay valid.
  struct BuildSlot {
    Mutex mu;
  };

  Result<const ColumnVector*> GetColumnLocked(size_t idx) REQUIRES(mu_);
  BuildSlot* GetBuildSlotLocked(SlotKind kind, size_t idx) REQUIRES(mu_);

  const Schema schema_;
  mutable Mutex mu_;
  Table table_ GUARDED_BY(mu_);
  std::optional<RawTable> raw_ GUARDED_BY(mu_);
  std::map<size_t, std::unique_ptr<EpochCrackerColumn>> crackers_
      GUARDED_BY(mu_);
  std::map<size_t, std::unique_ptr<SortedIndex>> indexes_ GUARDED_BY(mu_);
  std::map<size_t, std::unique_ptr<ZoneMap>> zone_maps_ GUARDED_BY(mu_);
  // A nullptr value is a cached "no compressed representation" verdict.
  std::map<size_t, std::unique_ptr<CompressedColumn>> compressed_
      GUARDED_BY(mu_);
  std::map<std::pair<int, size_t>, std::unique_ptr<BuildSlot>> build_slots_
      GUARDED_BY(mu_);
};

/// The engine's catalog: named tables, eager or adaptively loaded. Creation
/// and lookup are guarded; TableEntry pointers stay valid until the Database
/// is destroyed (entries are never removed).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers an in-memory table.
  Status CreateTable(const std::string& name, Table table) EXCLUDES(mu_);

  /// Registers a CSV file for NoDB-style adaptive loading: the file is not
  /// parsed until queries touch its columns.
  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions options = {}) EXCLUDES(mu_);

  Result<TableEntry*> GetTable(const std::string& name) EXCLUDES(mu_);

  std::vector<std::string> TableNames() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<TableEntry>> tables_ GUARDED_BY(mu_);
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_DATABASE_H_
