#ifndef EXPLOREDB_ENGINE_DATABASE_H_
#define EXPLOREDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "cracking/baselines.h"
#include "cracking/cracker_column.h"
#include "loading/raw_table.h"
#include "storage/table.h"
#include "storage/zone_map.h"

namespace exploredb {

/// A named table plus the adaptive infrastructure the engine grows around it
/// while queries run: per-column crackers and sorted indexes, created lazily
/// on first use (the "index as a side effect of querying" principle).
class TableEntry {
 public:
  explicit TableEntry(Table table) : table_(std::move(table)) {}
  TableEntry(Schema schema, RawTable raw)
      : table_(Table(std::move(schema))), raw_(std::move(raw)) {}

  const Schema& schema() const { return table_.schema(); }

  /// Row count (tokenizes a raw-backed table on first call).
  Result<size_t> NumRows();

  /// The column, adaptively loading it from the raw file when raw-backed.
  Result<const ColumnVector*> GetColumn(size_t idx);

  /// Lazily created cracker over an int64 column.
  Result<CrackerColumn*> GetCracker(size_t idx);

  /// Lazily created fully sorted index over an int64 column.
  Result<const SortedIndex*> GetSortedIndex(size_t idx);

  /// Lazily built per-zone min/max synopsis over a numeric column; scans
  /// consult it to skip morsels a predicate cannot match.
  Result<const ZoneMap*> GetZoneMap(size_t idx);

  /// Lazily built dictionary encoding of a string column (hash group-by keys
  /// by dense code instead of by string).
  Result<const DictEncoded*> GetDict(size_t idx);

  /// Fully materialized Table view (loads every raw column).
  Result<const Table*> Materialized();

  bool raw_backed() const { return raw_.has_value(); }

 private:
  Table table_;
  std::optional<RawTable> raw_;
  std::map<size_t, std::unique_ptr<CrackerColumn>> crackers_;
  std::map<size_t, std::unique_ptr<SortedIndex>> indexes_;
  std::map<size_t, std::unique_ptr<ZoneMap>> zone_maps_;
  std::map<size_t, std::unique_ptr<DictEncoded>> dicts_;
};

/// The engine's catalog: named tables, eager or adaptively loaded.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers an in-memory table.
  Status CreateTable(const std::string& name, Table table);

  /// Registers a CSV file for NoDB-style adaptive loading: the file is not
  /// parsed until queries touch its columns.
  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions options = {});

  Result<TableEntry*> GetTable(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableEntry> tables_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_DATABASE_H_
