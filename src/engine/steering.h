#ifndef EXPLOREDB_ENGINE_STEERING_H_
#define EXPLOREDB_ENGINE_STEERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "engine/session.h"

namespace exploredb {

/// Execution trace of a steering program: one entry per RUN statement.
struct SteeringTrace {
  std::vector<QueryResult> results;
  std::vector<std::string> executed_sql;  ///< human-readable query forms
};

/// A tiny declarative exploration-steering language — the tutorial's §2.4
/// closes by noting that "at the user interaction layer we still lack
/// declarative exploration languages to present and reason about popular
/// navigational idioms"; this module implements one for the idioms the
/// survey names (window sliding, zooming, filtering, approximate preview).
///
/// Programs are newline-separated statements ('#' starts a comment):
///
///   USE <table>
///   WINDOW <column> <lo> <hi>      -- set the exploration window [lo, hi)
///   PAN <delta>                    -- slide the window by delta
///   ZOOM <factor>                  -- rescale width around the center
///                                     (< 1 zooms in, > 1 zooms out)
///   FILTER <column> <op> <value>   -- add a conjunct (op: < <= > >= = !=)
///   CLEAR                          -- drop all FILTER conjuncts
///   MODE <scan|cracking|full-index|sampled|online>
///   SAMPLE <fraction>              -- sample fraction for MODE sampled
///   ERROR <budget>                 -- CI budget for MODE online
///   AGG <avg|sum|count> [column]   -- aggregate instead of row selection
///   SELECT <col> [col ...]         -- projection for row selections
///   RUN                            -- execute the current exploration state
///
/// Each RUN goes through the Session, so steering programs benefit from the
/// middleware (caching, speculation) like interactive users do.
class SteeringInterpreter {
 public:
  explicit SteeringInterpreter(Session* session) : session_(session) {}

  /// Parses and executes `program`. Fails with the 1-based line number on
  /// the first invalid statement; queries that fail abort execution.
  Result<SteeringTrace> Run(const std::string& program);

 private:
  struct State {
    std::string table;
    bool has_window = false;
    size_t window_col = 0;
    int64_t lo = 0;
    int64_t hi = 0;
    std::vector<Condition> filters;
    QueryOptions options;
    std::optional<AggregateExpr> agg;
    std::vector<std::string> projection;
  };

  Result<Query> BuildQuery(const State& state) const;
  Result<Schema> TableSchema(const std::string& table) const;

  Session* session_;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_STEERING_H_
