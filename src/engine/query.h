#ifndef EXPLOREDB_ENGINE_QUERY_H_
#define EXPLOREDB_ENGINE_QUERY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "sampling/estimators.h"
#include "sampling/online_agg.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace exploredb {

/// How the engine should execute a query — the knob that trades freshness of
/// infrastructure (indexes, samples) against latency, mirroring the
/// tutorial's Database Layer options.
enum class ExecutionMode {
  kScan,       ///< full scan, no auxiliary structures
  kCracking,   ///< adaptive indexing: crack the touched column as we go
  kFullIndex,  ///< build/use a fully sorted index (pay upfront)
  kSampled,    ///< approximate answer from a uniform sample
  kOnline,     ///< online aggregation until the error budget is met
  kAuto,       ///< engine picks: cracking for index-serviceable predicates,
               ///< scan otherwise ("organic" self-organizing default)
  kBudgeted,   ///< planner picks the cheapest plan expected to meet the
               ///< query's LatencyBudget (cache -> pruned exact scan ->
               ///< sample estimate -> online aggregation)
};

const char* ExecutionModeName(ExecutionMode mode);

/// A per-query latency contract: answer within `latency`, aiming for a
/// relative error no worse than `target_error`. The planner picks the
/// cheapest plan expected to satisfy both; when no exact plan fits, it
/// degrades to an approximate one (and, under ExecuteProgressive, streams
/// refining partials until the deadline). This is the per-interaction time
/// budget IDEBench makes the core requirement of exploration benchmarking.
struct LatencyBudget {
  /// Wall-clock budget, measured from the moment the planner sees the query.
  std::chrono::nanoseconds latency = std::chrono::milliseconds(100);
  /// Target relative error: CI half-width / |value| the answer should reach
  /// (0 means "exact or as good as the budget allows").
  double target_error = 0.01;
  double confidence = 0.95;
};

/// Which plan the budgeted planner chose — the lattice position, recorded in
/// ExecStats so triage can see why a query ran the way it did.
enum class PlannerChoice {
  kNone,    ///< query did not go through the planner
  kCache,   ///< served from the session result cache
  kExact,   ///< exact (zone-map pruned, possibly indexed) plan fit the budget
  kSample,  ///< uniform-sample estimate sized to the budget
  kOnline,  ///< online aggregation, progressively refined until the deadline
};

const char* PlannerChoiceName(PlannerChoice choice);

/// Per-query execution options.
struct QueryOptions {
  ExecutionMode mode = ExecutionMode::kScan;
  /// kBudgeted: the latency contract the planner must honor.
  LatencyBudget budget;
  /// kSampled: fraction of rows to sample.
  double sample_fraction = 0.01;
  /// kOnline: stop when the CI half-width drops below this (absolute).
  double error_budget = 0.0;
  double confidence = 0.95;
  /// Scans consult per-column zone maps and skip morsels the predicate
  /// cannot match. Off is only useful for pruning A/B tests and benches.
  bool use_zone_maps = true;
  /// Scans run on a column's compressed representation when it has one
  /// (packed frame-of-reference filters, RLE run skipping, dictionary-code
  /// equality for strings). Results are bit-identical either way; off forces
  /// the raw-column kernels, for A/B tests and benches.
  bool use_compression = true;
  /// Force trace-span recording for this query even when process-wide
  /// tracing (EXPLOREDB_TRACE=1 / Tracer::SetEnabled) is off. This is how
  /// Session::ExplainAnalyze captures one query's per-phase/per-morsel
  /// breakdown without tracing everything.
  bool trace = false;
};

/// Which access path actually answered the query — the first thing to look
/// at when a query was slower (or faster) than expected.
enum class AccessPath {
  kNone,     ///< not executed yet
  kScan,     ///< full column scan (serial or morsel-parallel)
  kCracker,  ///< adaptive cracker index
  kSorted,   ///< fully sorted index
  kSample,   ///< uniform-sample estimate
  kOnline,   ///< online aggregation
  kCache,    ///< served from the session result cache
};

const char* AccessPathName(AccessPath path);

/// Structured per-query execution statistics, returned inside QueryResult.
/// Every phase the executor runs is timed with a Stopwatch; morsel dispatch
/// is counted so regressions in parallelism (e.g. a predicate silently
/// falling off the parallel path) show up in numbers, not vibes.
struct ExecStats {
  uint64_t rows_scanned = 0;       ///< row visits across all phases
  uint64_t morsels_dispatched = 0; ///< parallel work units issued
  uint64_t morsels_pruned = 0;     ///< morsels skipped via zone-map bounds
  /// Morsels whose predicate ran on compressed data (packed FOR words, RLE
  /// run headers, dictionary codes) instead of the raw column.
  uint64_t compressed_morsels = 0;
  uint32_t threads_used = 1;       ///< distinct threads that did work
  AccessPath path = AccessPath::kNone;
  /// What actually ran after mode resolution: kAuto and kBudgeted resolve to
  /// a concrete mode, everything else passes through. Session query logs
  /// record this next to the requested mode so planner decisions can be
  /// audited.
  ExecutionMode resolved_mode = ExecutionMode::kScan;

  // -- Budgeted-planner provenance (kNone/zeros unless the query ran under
  // ExecutionMode::kBudgeted). `promised_error` is the relative CI half-width
  // the chosen plan was predicted to reach; `achieved_error` the relative CI
  // half-width it actually delivered (0 for exact answers). Together with
  // `plans_considered` they answer "why was this plan picked, and did it keep
  // its promise" without a debugger.
  PlannerChoice planner_choice = PlannerChoice::kNone;
  uint32_t plans_considered = 0;  ///< candidate plans the planner costed
  double promised_error = 0.0;    ///< predicted relative error of the plan
  double achieved_error = 0.0;    ///< realized relative error of the answer
  /// Which kernel table served the query's scan/aggregate inner loops —
  /// the dispatched CPU path (scalar / sse42 / avx2), after any
  /// EXPLOREDB_SIMD override. Results are bit-identical across paths; this
  /// field exists so perf triage can tell which code actually ran.
  simd::SimdPath simd_path = simd::SimdPath::kScalar;

  // Per-phase wall times (nanoseconds; zero when the phase did not run).
  int64_t plan_nanos = 0;       ///< mode resolution + range extraction
  int64_t select_nanos = 0;     ///< predicate evaluation / index probe
  int64_t aggregate_nanos = 0;  ///< accumulator evaluation + merge
  int64_t project_nanos = 0;    ///< gathering output columns
  /// Time spent unpacking compressed blocks (gathering survivors out of FOR
  /// sub-blocks / RLE runs). A subset of select/aggregate time, not an extra
  /// phase; ExplainAnalyze surfaces it so "how much did decompression cost"
  /// has a number.
  int64_t decompress_nanos = 0;
  int64_t total_nanos = 0;
  /// Time the query waited in the SessionScheduler's fair queue before
  /// execution started (0 when it ran without a scheduler). Not part of
  /// total_nanos: queueing is the serving layer's cost, execution the
  /// engine's; the SLO monitor observes their sum as user-visible latency.
  int64_t queue_nanos = 0;

  /// One human-readable summary line, e.g.
  /// "path=scan rows=1000000 morsels=16 threads=4 | plan=3us select=1.2ms
  ///  agg=0.4ms project=0us total=1.7ms".
  std::string Summary() const;
};

/// Everything the executor needs to know about *how* to run one query:
/// options, an optional deadline, a cooperative cancellation flag, and the
/// thread pool to spread morsels over. Copies are cheap and share the
/// cancellation flag, so a controller thread can hold a copy and cancel a
/// query running elsewhere.
///
///   ExecContext ctx;
///   ctx.options().mode = ExecutionMode::kCracking;
///   ctx.SetTimeout(std::chrono::milliseconds(50));
///   auto result = executor.Execute(query, ctx);
class ExecContext {
 public:
  ExecContext() : cancel_(std::make_shared<std::atomic<bool>>(false)) {}
  explicit ExecContext(QueryOptions options) : ExecContext() {
    options_ = options;
  }

  QueryOptions& options() { return options_; }
  const QueryOptions& options() const { return options_; }
  ExecContext& SetMode(ExecutionMode mode) {
    options_.mode = mode;
    return *this;
  }

  // -- Deadline ------------------------------------------------------------
  ExecContext& SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }
  ExecContext& SetTimeout(std::chrono::nanoseconds budget) {
    deadline_ = std::chrono::steady_clock::now() + budget;
    return *this;
  }
  ExecContext& ClearDeadline() {
    deadline_.reset();
    return *this;
  }
  /// The budgeted-execution entry point: one call sets the latency contract
  /// (deadline + target error) and routes the query through the planner.
  /// Supersedes ad-hoc SetTimeout for this path — the planner anchors the
  /// deadline at plan time, so a context with a budget can be reused across
  /// queries and each one gets the full budget. An explicit earlier deadline
  /// (SetDeadline/SetTimeout) still wins if it expires first.
  ExecContext& SetBudget(LatencyBudget budget) {
    options_.mode = ExecutionMode::kBudgeted;
    options_.budget = budget;
    return *this;
  }
  bool has_deadline() const { return deadline_.has_value(); }
  std::optional<std::chrono::steady_clock::time_point> deadline() const {
    return deadline_;
  }
  bool DeadlineExceeded() const {
    return deadline_.has_value() &&
           std::chrono::steady_clock::now() >= *deadline_;
  }

  // -- Cancellation (shared across copies) ---------------------------------
  void RequestCancel() const { cancel_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancel_->load(std::memory_order_relaxed); }

  /// True when execution should stop between morsels/batches.
  bool Interrupted() const { return cancelled() || DeadlineExceeded(); }

  // -- Parallelism ---------------------------------------------------------
  /// Pool for morsel-parallel kernels; nullptr forces serial execution.
  /// Defaults to the process-wide pool.
  ExecContext& SetThreadPool(ThreadPool* pool) {
    pool_ = pool;
    return *this;
  }
  ThreadPool* thread_pool() const { return pool_; }

  ExecContext& SetMorselSize(size_t rows) {
    morsel_size_ = rows;
    return *this;
  }
  size_t morsel_size() const { return morsel_size_; }

  // -- Scheduling ----------------------------------------------------------
  /// Stamped by the SessionScheduler with the time this query spent in its
  /// fair queue; the Session copies it into the result's ExecStats and the
  /// SLO monitor adds it to the observed latency.
  ExecContext& SetQueueNanos(int64_t nanos) {
    queue_nanos_ = nanos;
    return *this;
  }
  int64_t queue_nanos() const { return queue_nanos_; }

  // -- Tracing -------------------------------------------------------------
  ExecContext& SetTrace(bool on) {
    options_.trace = on;
    return *this;
  }
  /// Should this query's executor spans be recorded? True when the query
  /// opted in (options().trace) or process-wide tracing is on.
  bool tracing() const { return options_.trace || Tracer::enabled(); }

  /// Default morsel: ~64K rows — small enough to balance, large enough to
  /// amortize dispatch (a few hundred KB of column data per unit).
  static constexpr size_t kDefaultMorselSize = 64 * 1024;

 private:
  QueryOptions options_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  ThreadPool* pool_ = ThreadPool::Global();
  size_t morsel_size_ = kDefaultMorselSize;
  int64_t queue_nanos_ = 0;
};

/// An aggregate expression `agg(column)`.
struct AggregateExpr {
  AggKind kind = AggKind::kCount;
  std::string column;  ///< ignored for COUNT(*) — leave empty
};

class QueryBuilder;

/// A declarative exploration query over one table: selection + either a
/// projection or an (optionally grouped) aggregate. Built fluently:
///
///   Query q = Query::On("stars")
///                 .Where(Predicate::Range(0, 10.0, 20.0))
///                 .Aggregate(AggKind::kAvg, "brightness")
///                 .GroupBy("region");
///
/// Conditions reference columns by index; prefer Query::From (a name-based
/// QueryBuilder) when hand-writing queries.
class Query {
 public:
  static Query On(std::string table) {
    Query q;
    q.table_ = std::move(table);
    return q;
  }

  /// Name-based fluent builder (resolved against the schema at Build or
  /// Execute time):
  ///
  ///   Query::From("requests").WhereBetween("user_id", 10'000, 20'000)
  ///                          .Aggregate(AggKind::kAvg, "latency_ms")
  static QueryBuilder From(std::string table);

  Query& Where(Predicate pred) {
    where_ = std::move(pred);
    return *this;
  }
  Query& Select(std::vector<std::string> columns) {
    select_ = std::move(columns);
    return *this;
  }
  Query& Aggregate(AggKind kind, std::string column = "") {
    aggregate_ = AggregateExpr{kind, std::move(column)};
    return *this;
  }
  Query& GroupBy(std::string column) {
    group_by_ = std::move(column);
    return *this;
  }

  const std::string& table() const { return table_; }
  const Predicate& where() const { return where_; }
  const std::vector<std::string>& select() const { return select_; }
  const std::optional<AggregateExpr>& aggregate() const { return aggregate_; }
  const std::optional<std::string>& group_by() const { return group_by_; }

  /// Stable key for result caching and trajectory modeling.
  std::string CacheKey() const;

 private:
  std::string table_;
  Predicate where_;
  std::vector<std::string> select_;
  std::optional<AggregateExpr> aggregate_;
  std::optional<std::string> group_by_;
};

/// Fluent, name-based query construction: conditions are written against
/// column *names* and resolved (with numeric coercion and type checking)
/// against the table schema by Build(). Executor/Session accept a builder
/// directly and resolve it against the catalog.
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string table) : table_(std::move(table)) {}

  QueryBuilder& Where(std::string column, CompareOp op, Value constant) {
    conditions_.push_back({std::move(column), op, std::move(constant)});
    return *this;
  }
  /// The exploration window idiom: lo <= column < hi.
  QueryBuilder& WhereBetween(std::string column, Value lo, Value hi) {
    conditions_.push_back({column, CompareOp::kGe, std::move(lo)});
    conditions_.push_back({std::move(column), CompareOp::kLt, std::move(hi)});
    return *this;
  }
  QueryBuilder& Select(std::vector<std::string> columns) {
    select_ = std::move(columns);
    return *this;
  }
  QueryBuilder& Aggregate(AggKind kind, std::string column = "") {
    aggregate_ = AggregateExpr{kind, std::move(column)};
    return *this;
  }
  QueryBuilder& GroupBy(std::string column) {
    group_by_ = std::move(column);
    return *this;
  }

  const std::string& table() const { return table_; }

  /// Resolves column names to indexes and coerces numeric constants to the
  /// column type. Fails on unknown columns and on constants whose type the
  /// column cannot compare against (e.g. a string against an int64 column).
  Result<Query> Build(const Schema& schema) const;

 private:
  struct NamedCondition {
    std::string column;
    CompareOp op;
    Value constant;
  };

  std::string table_;
  std::vector<NamedCondition> conditions_;
  std::vector<std::string> select_;
  std::optional<AggregateExpr> aggregate_;
  std::optional<std::string> group_by_;
};

inline QueryBuilder Query::From(std::string table) {
  return QueryBuilder(std::move(table));
}

/// One group of a grouped-aggregate result.
struct GroupValue {
  std::string key;
  Estimate value;
};

/// Result of a query: positions + projected rows for selections, an Estimate
/// for aggregates (exact answers have zero CI width), groups for group-bys.
struct QueryResult {
  std::vector<uint32_t> positions;       ///< matching rows (selections)
  std::optional<Table> rows;             ///< projected rows (selections)
  std::optional<Estimate> scalar;        ///< aggregate result
  std::vector<GroupValue> groups;        ///< grouped aggregate result

  // Provenance / cost accounting.
  ExecStats exec_stats;                  ///< structured per-query statistics
  bool from_cache = false;
  bool approximate = false;

  const ExecStats& stats() const { return exec_stats; }
};

/// One progressively refined partial answer streamed by the budgeted planner:
/// the running estimate (CI shrinking delivery to delivery — the planner only
/// delivers when the CI improved, so consecutive updates are monotone) plus a
/// snapshot of the execution statistics at delivery time. The delivery
/// flagged `final` repeats the returned answer bit-identically, so a consumer
/// that only renders updates never disagrees with the returned result.
struct ProgressiveUpdate {
  Estimate estimate;
  ExecStats stats;      ///< statistics snapshot at delivery time
  uint64_t sequence = 0;  ///< 0-based delivery index
  bool final = false;     ///< last delivery; equals the returned result
};

/// Invoked on the executing thread for each refinement delivery; must not
/// re-enter the session that issued the query.
using ProgressiveCallback = std::function<void(const ProgressiveUpdate&)>;

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_QUERY_H_
