#ifndef EXPLOREDB_ENGINE_QUERY_H_
#define EXPLOREDB_ENGINE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sampling/estimators.h"
#include "sampling/online_agg.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace exploredb {

/// How the engine should execute a query — the knob that trades freshness of
/// infrastructure (indexes, samples) against latency, mirroring the
/// tutorial's Database Layer options.
enum class ExecutionMode {
  kScan,       ///< full scan, no auxiliary structures
  kCracking,   ///< adaptive indexing: crack the touched column as we go
  kFullIndex,  ///< build/use a fully sorted index (pay upfront)
  kSampled,    ///< approximate answer from a uniform sample
  kOnline,     ///< online aggregation until the error budget is met
  kAuto,       ///< engine picks: cracking for index-serviceable predicates,
               ///< scan otherwise ("organic" self-organizing default)
};

const char* ExecutionModeName(ExecutionMode mode);

/// Per-query execution options.
struct QueryOptions {
  ExecutionMode mode = ExecutionMode::kScan;
  /// kSampled: fraction of rows to sample.
  double sample_fraction = 0.01;
  /// kOnline: stop when the CI half-width drops below this (absolute).
  double error_budget = 0.0;
  double confidence = 0.95;
};

/// An aggregate expression `agg(column)`.
struct AggregateExpr {
  AggKind kind = AggKind::kCount;
  std::string column;  ///< ignored for COUNT(*) — leave empty
};

/// A declarative exploration query over one table: selection + either a
/// projection or an (optionally grouped) aggregate. Built fluently:
///
///   Query q = Query::On("stars")
///                 .Where(Predicate::Range(0, 10.0, 20.0))
///                 .Aggregate(AggKind::kAvg, "brightness")
///                 .GroupBy("region");
class Query {
 public:
  static Query On(std::string table) {
    Query q;
    q.table_ = std::move(table);
    return q;
  }

  Query& Where(Predicate pred) {
    where_ = std::move(pred);
    return *this;
  }
  Query& Select(std::vector<std::string> columns) {
    select_ = std::move(columns);
    return *this;
  }
  Query& Aggregate(AggKind kind, std::string column = "") {
    aggregate_ = AggregateExpr{kind, std::move(column)};
    return *this;
  }
  Query& GroupBy(std::string column) {
    group_by_ = std::move(column);
    return *this;
  }

  const std::string& table() const { return table_; }
  const Predicate& where() const { return where_; }
  const std::vector<std::string>& select() const { return select_; }
  const std::optional<AggregateExpr>& aggregate() const { return aggregate_; }
  const std::optional<std::string>& group_by() const { return group_by_; }

  /// Stable key for result caching and trajectory modeling.
  std::string CacheKey() const;

 private:
  std::string table_;
  Predicate where_;
  std::vector<std::string> select_;
  std::optional<AggregateExpr> aggregate_;
  std::optional<std::string> group_by_;
};

/// One group of a grouped-aggregate result.
struct GroupValue {
  std::string key;
  Estimate value;
};

/// Result of a query: positions + projected rows for selections, an Estimate
/// for aggregates (exact answers have zero CI width), groups for group-bys.
struct QueryResult {
  std::vector<uint32_t> positions;       ///< matching rows (selections)
  std::optional<Table> rows;             ///< projected rows (selections)
  std::optional<Estimate> scalar;        ///< aggregate result
  std::vector<GroupValue> groups;        ///< grouped aggregate result

  // Provenance / cost accounting.
  uint64_t rows_scanned = 0;
  bool from_cache = false;
  bool approximate = false;
  int64_t exec_micros = 0;
};

}  // namespace exploredb

#endif  // EXPLOREDB_ENGINE_QUERY_H_
