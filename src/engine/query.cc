#include "engine/query.h"

namespace exploredb {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kScan:
      return "scan";
    case ExecutionMode::kCracking:
      return "cracking";
    case ExecutionMode::kFullIndex:
      return "full-index";
    case ExecutionMode::kSampled:
      return "sampled";
    case ExecutionMode::kOnline:
      return "online";
    case ExecutionMode::kAuto:
      return "auto";
  }
  return "?";
}

std::string Query::CacheKey() const {
  std::string key = table_;
  key += "|";
  key += where_.CacheKey();
  key += "|sel:";
  for (const std::string& c : select_) {
    key += c;
    key += ",";
  }
  if (aggregate_.has_value()) {
    key += "|agg:";
    key += AggKindName(aggregate_->kind);
    key += "(";
    key += aggregate_->column;
    key += ")";
  }
  if (group_by_.has_value()) {
    key += "|by:";
    key += *group_by_;
  }
  return key;
}

}  // namespace exploredb
