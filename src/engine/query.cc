#include "engine/query.h"

#include <cstdio>

#include "common/strings.h"

namespace exploredb {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kScan:
      return "scan";
    case ExecutionMode::kCracking:
      return "cracking";
    case ExecutionMode::kFullIndex:
      return "full-index";
    case ExecutionMode::kSampled:
      return "sampled";
    case ExecutionMode::kOnline:
      return "online";
    case ExecutionMode::kAuto:
      return "auto";
    case ExecutionMode::kBudgeted:
      return "budgeted";
  }
  return "?";
}

const char* PlannerChoiceName(PlannerChoice choice) {
  switch (choice) {
    case PlannerChoice::kNone:
      return "none";
    case PlannerChoice::kCache:
      return "cache";
    case PlannerChoice::kExact:
      return "exact";
    case PlannerChoice::kSample:
      return "sample";
    case PlannerChoice::kOnline:
      return "online";
  }
  return "?";
}

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kNone:
      return "none";
    case AccessPath::kScan:
      return "scan";
    case AccessPath::kCracker:
      return "cracker";
    case AccessPath::kSorted:
      return "sorted";
    case AccessPath::kSample:
      return "sample";
    case AccessPath::kOnline:
      return "online";
    case AccessPath::kCache:
      return "cache";
  }
  return "?";
}

std::string ExecStats::Summary() const {
  std::string out = "path=";
  out += AccessPathName(path);
  out += " rows=" + std::to_string(rows_scanned);
  out += " morsels=" + std::to_string(morsels_dispatched);
  out += " pruned=" + std::to_string(morsels_pruned);
  if (compressed_morsels > 0) {
    out += " compressed=" + std::to_string(compressed_morsels);
  }
  out += " threads=" + std::to_string(threads_used);
  out += " simd=";
  out += simd::SimdPathName(simd_path);
  if (planner_choice != PlannerChoice::kNone) {
    out += " planner=";
    out += PlannerChoiceName(planner_choice);
    out += " plans=" + std::to_string(plans_considered);
    char err[64];
    std::snprintf(err, sizeof(err), " promised=%.3g achieved=%.3g",
                  promised_error, achieved_error);
    out += err;
  }
  out += " | plan=" + FormatDurationNanos(plan_nanos);
  out += " select=" + FormatDurationNanos(select_nanos);
  out += " agg=" + FormatDurationNanos(aggregate_nanos);
  if (decompress_nanos > 0) {
    out += " decompress=" + FormatDurationNanos(decompress_nanos);
  }
  out += " project=" + FormatDurationNanos(project_nanos);
  out += " total=" + FormatDurationNanos(total_nanos);
  if (queue_nanos > 0) {
    out += " queue=" + FormatDurationNanos(queue_nanos);
  }
  return out;
}

Result<Query> QueryBuilder::Build(const Schema& schema) const {
  Predicate where;
  for (const NamedCondition& c : conditions_) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(c.column));
    Value constant = c.constant;
    switch (schema.field(idx).type) {
      case DataType::kInt64:
        // Comparisons against a double constant are evaluated in double
        // precision by the scan kernels; nothing to coerce.
        if (constant.is_string()) {
          return Status::InvalidArgument("string constant for int64 column '" +
                                         c.column + "'");
        }
        break;
      case DataType::kDouble:
        if (constant.is_int64()) constant = Value(constant.AsDouble());
        if (constant.is_string()) {
          return Status::InvalidArgument(
              "string constant for double column '" + c.column + "'");
        }
        break;
      case DataType::kString:
        if (!constant.is_string()) {
          return Status::InvalidArgument(
              "non-string constant for string column '" + c.column + "'");
        }
        break;
    }
    where.And({idx, c.op, std::move(constant)});
  }
  Query q = Query::On(table_).Where(std::move(where));
  if (!select_.empty()) q.Select(select_);
  if (aggregate_.has_value()) q.Aggregate(aggregate_->kind, aggregate_->column);
  if (group_by_.has_value()) q.GroupBy(*group_by_);
  return q;
}

std::string Query::CacheKey() const {
  std::string key = table_;
  key += "|";
  key += where_.CacheKey();
  key += "|sel:";
  for (const std::string& c : select_) {
    key += c;
    key += ",";
  }
  if (aggregate_.has_value()) {
    key += "|agg:";
    key += AggKindName(aggregate_->kind);
    key += "(";
    key += aggregate_->column;
    key += ")";
  }
  if (group_by_.has_value()) {
    key += "|by:";
    key += *group_by_;
  }
  return key;
}

}  // namespace exploredb
