#include "engine/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/metrics.h"
#include "common/trace.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "sampling/estimators.h"
#include "sampling/online_agg.h"
#include "simd/simd.h"
#include "storage/zone_map.h"

namespace exploredb {

namespace {

// Planner observability: one counter per lattice rung plus contract
// accounting, so a dashboard can answer "what fraction of budgeted queries
// met their contract, and which plans carried the load".
Counter* PlannerQueriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_queries_total", "Queries routed through the planner");
  return c;
}

Counter* PlansConsideredCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_plans_considered_total",
      "Candidate plans costed by the planner");
  return c;
}

Counter* PlannerChoiceCounter(PlannerChoice choice) {
  static Counter* cache = Metrics().GetCounter(
      "exploredb_planner_choice_cache_total",
      "Budgeted queries served from the result cache");
  static Counter* exact = Metrics().GetCounter(
      "exploredb_planner_choice_exact_total",
      "Budgeted queries answered by an exact plan");
  static Counter* sample = Metrics().GetCounter(
      "exploredb_planner_choice_sample_total",
      "Budgeted queries answered by a uniform-sample estimate");
  static Counter* online = Metrics().GetCounter(
      "exploredb_planner_choice_online_total",
      "Budgeted queries answered by progressive online aggregation");
  switch (choice) {
    case PlannerChoice::kCache:
      return cache;
    case PlannerChoice::kSample:
      return sample;
    case PlannerChoice::kOnline:
      return online;
    case PlannerChoice::kExact:
    case PlannerChoice::kNone:
      break;
  }
  return exact;
}

Counter* BudgetMetCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_budget_met_total",
      "Budgeted queries whose wall time stayed within their latency budget");
  return c;
}

Counter* BudgetMissedCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_budget_missed_total",
      "Budgeted queries whose wall time exceeded their latency budget");
  return c;
}

Counter* ExactRescueCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_exact_rescues_total",
      "Exact plans that blew their deadline and were rescued by a sample");
  return c;
}

Counter* DeliveriesCounter() {
  static Counter* c = Metrics().GetCounter(
      "exploredb_planner_progressive_deliveries_total",
      "Progressive refinement deliveries streamed to callbacks");
  return c;
}

// Engine-level series shared with the executor (the registry dedups by
// name): the planner's own progressive path bypasses Executor::Execute, so
// it folds its queries into the same totals here.
void RecordEngineQueryMetrics(const ExecStats& stats) {
  static Counter* queries = Metrics().GetCounter(
      "exploredb_queries_total", "Queries executed by the engine");
  static Histogram* latency = [] {
    Histogram* hist = Metrics().GetHistogram(
        "exploredb_query_latency_seconds", {},
        "End-to-end query latency (recorded in ns, exposed in seconds)");
    Metrics().SetScale("exploredb_query_latency_seconds", 1e-9);
    return hist;
  }();
  static Counter* rows = Metrics().GetCounter(
      "exploredb_rows_scanned_total", "Row visits across all query phases");
  static Counter* morsels = Metrics().GetCounter(
      "exploredb_morsels_dispatched_total",
      "Parallel work units issued by the executor");
  queries->Add();
  latency->Record(stats.total_nanos);
  rows->Add(stats.rows_scanned);
  morsels->Add(stats.morsels_dispatched);
}

/// Relative error of an estimate: CI half-width over |value|, with a floor
/// on the denominator so zero-valued answers don't divide by zero.
double RelativeError(const Estimate& e) {
  if (e.ci_half_width == 0.0) return 0.0;
  return e.ci_half_width / std::max(std::abs(e.value), 1e-12);
}

/// Smallest sample the approximate rescue paths will run: below this the CLT
/// machinery has nothing to work with.
constexpr uint64_t kMinSampleRows = 256;

/// Fraction of the remaining budget a plan's cost estimate may fill. The
/// slack absorbs cost-model error in the direction that matters: a plan that
/// "just fits" on paper should still land inside the contract.
constexpr double kBudgetHeadroom = 0.8;

double EwmaUpdate(double current, double observed, double alpha) {
  return current + alpha * (observed - current);
}

}  // namespace

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

double CostModel::ExactCostNs(uint64_t rows, bool compressed) const {
  MutexLock lock(mu_);
  return static_cast<double>(rows) *
         (compressed ? exact_compressed_ns_per_row_ : exact_ns_per_row_);
}

double CostModel::SampleCostNs(uint64_t rows) const {
  MutexLock lock(mu_);
  return static_cast<double>(rows) * sample_ns_per_row_;
}

double CostModel::OnlineCostNs(uint64_t rows, uint64_t consumed) const {
  MutexLock lock(mu_);
  return static_cast<double>(rows) * online_build_ns_per_row_ +
         static_cast<double>(consumed) * online_ns_per_row_;
}

double CostModel::PredictRelativeError(uint64_t sample_rows,
                                       double confidence) const {
  MutexLock lock(mu_);
  if (sample_rows == 0) return 1.0;
  return ZScore(confidence) * cv_ /
         std::sqrt(static_cast<double>(sample_rows));
}

uint64_t CostModel::OnlineRowsWithin(double ns, uint64_t rows) const {
  MutexLock lock(mu_);
  double build = static_cast<double>(rows) * online_build_ns_per_row_;
  if (ns <= build || online_ns_per_row_ <= 0) return 0;
  double consumable = (ns - build) / online_ns_per_row_;
  return static_cast<uint64_t>(
      std::min(consumable, static_cast<double>(rows)));
}

void CostModel::ObserveExact(uint64_t rows, int64_t nanos, bool compressed) {
  if (rows == 0 || nanos <= 0) return;
  MutexLock lock(mu_);
  double& rate = compressed ? exact_compressed_ns_per_row_ : exact_ns_per_row_;
  rate = EwmaUpdate(
      rate, static_cast<double>(nanos) / static_cast<double>(rows), kAlpha);
}

void CostModel::ObserveSample(uint64_t rows, int64_t nanos) {
  if (rows == 0 || nanos <= 0) return;
  MutexLock lock(mu_);
  sample_ns_per_row_ = EwmaUpdate(
      sample_ns_per_row_,
      static_cast<double>(nanos) / static_cast<double>(rows), kAlpha);
}

void CostModel::ObserveOnline(uint64_t rows, uint64_t consumed,
                              int64_t nanos) {
  if (rows == 0 || nanos <= 0) return;
  MutexLock lock(mu_);
  // Attribute the wall time across build and consumption with the current
  // split, then nudge both rates toward the observation. Crude, but it only
  // has to keep the estimates within a small factor of reality.
  double build_share = static_cast<double>(rows) * online_build_ns_per_row_;
  double consume_share = static_cast<double>(consumed) * online_ns_per_row_;
  double total_share = build_share + consume_share;
  if (total_share <= 0) return;
  double scale = static_cast<double>(nanos) / total_share;
  online_build_ns_per_row_ =
      EwmaUpdate(online_build_ns_per_row_,
                 online_build_ns_per_row_ * scale, kAlpha);
  online_ns_per_row_ =
      EwmaUpdate(online_ns_per_row_, online_ns_per_row_ * scale, kAlpha);
}

void CostModel::ObserveRelativeError(double relative_error,
                                     uint64_t sample_rows, double confidence) {
  if (sample_rows == 0 || relative_error <= 0) return;
  double z = ZScore(confidence);
  if (z <= 0) return;
  MutexLock lock(mu_);
  double observed_cv =
      relative_error * std::sqrt(static_cast<double>(sample_rows)) / z;
  cv_ = EwmaUpdate(cv_, observed_cv, kAlpha);
}

void CostModel::SetExactNsPerRowForTest(double ns_per_row) {
  MutexLock lock(mu_);
  exact_ns_per_row_ = ns_per_row;
  exact_compressed_ns_per_row_ = ns_per_row;
}

double CostModel::exact_ns_per_row() const {
  MutexLock lock(mu_);
  return exact_ns_per_row_;
}

double CostModel::exact_compressed_ns_per_row() const {
  MutexLock lock(mu_);
  return exact_compressed_ns_per_row_;
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

Result<Planner::ScanEstimate> Planner::EstimateScan(TableEntry* entry,
                                                    const Query& query,
                                                    uint64_t n,
                                                    bool use_compression) {
  ScanEstimate est;
  est.live_rows = n;
  if (n == 0 || query.where().empty()) return est;
  const Schema& schema = entry->schema();
  std::vector<std::pair<const ZoneMap*, const Condition*>> pruners;
  for (const Condition& c : query.where().conjuncts()) {
    if (c.column >= schema.num_fields()) continue;
    if (schema.field(c.column).type == DataType::kString) continue;
    if (c.constant.is_string()) continue;
    EXPLOREDB_ASSIGN_OR_RETURN(const ZoneMap* zm, entry->GetZoneMap(c.column));
    pruners.emplace_back(zm, &c);
    // The compressed representation sharpens the estimate — exact counts for
    // RLE blocks — and flags the scan for the compressed cost rate.
    const CompressedInt64Column* ci = nullptr;
    if (use_compression && schema.field(c.column).type == DataType::kInt64 &&
        c.constant.is_int64()) {
      EXPLOREDB_ASSIGN_OR_RETURN(const CompressedColumn* cc,
                                 entry->GetCompressed(c.column));
      if (cc != nullptr && cc->scan_enabled()) ci = cc->i64();
    }
    if (ci != nullptr) est.compressed = true;
    est.selectivity *= zm->EstimateSelectivity(c, ci);
  }
  if (pruners.empty()) return est;
  // Count the rows of zones every conjunct may match — what a pruned scan
  // will actually touch (building the zone map is a one-time O(n) cost the
  // first budgeted query pays; afterwards planning is O(zones)).
  const size_t zone = pruners.front().first->zone_rows();
  uint64_t live = 0;
  for (uint64_t begin = 0; begin < n; begin += zone) {
    const auto end = static_cast<uint32_t>(std::min<uint64_t>(n, begin + zone));
    bool may = true;
    for (const auto& [zm, c] : pruners) {
      if (!zm->MayMatch(*c, static_cast<uint32_t>(begin), end)) {
        may = false;
        break;
      }
    }
    if (may) live += end - begin;
  }
  est.live_rows = live;
  return est;
}

Result<QueryResult> Planner::Execute(const Query& query, const ExecContext& ctx,
                                     const ProgressiveCallback* callback) {
  if (ctx.cancelled()) return Status::Cancelled("query cancelled");
  const bool tracing = ctx.tracing();
  const LatencyBudget& budget = ctx.options().budget;
  const auto start = std::chrono::steady_clock::now();
  // The budget anchors at plan time; an explicit earlier deadline still wins.
  auto deadline = start + budget.latency;
  if (ctx.has_deadline() && *ctx.deadline() < deadline) {
    deadline = *ctx.deadline();
  }
  const double budget_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - start)
          .count());

  PlannerQueriesCounter()->Add();

  // ---- Plan: cost the lattice with what the engine already knows ----------
  int64_t planner_nanos = 0;
  ExecStats planned;  // planner fields filled here, execution fills the rest
  {
    TraceSpan plan_span("planner", tracing, &planner_nanos);
    EXPLOREDB_ASSIGN_OR_RETURN(TableEntry * entry, db_->GetTable(query.table()));
    EXPLOREDB_ASSIGN_OR_RETURN(size_t num_rows, entry->NumRows());
    const auto n = static_cast<uint64_t>(num_rows);
    const bool scalar_agg =
        query.aggregate().has_value() && !query.group_by().has_value();
    const bool grouped = query.group_by().has_value();

    EXPLOREDB_ASSIGN_OR_RETURN(
        ScanEstimate scan,
        EstimateScan(entry, query, n, ctx.options().use_compression));

    // Rung 2: pruned exact scan. Always costed; cache (rung 1) is consulted
    // by the Session before the planner runs.
    uint32_t plans = 1;
    const double exact_cost =
        cost_model_.ExactCostNs(scan.live_rows, scan.compressed);
    const bool exact_fits = exact_cost <= budget_ns * kBudgetHeadroom;

    // Rung 3: uniform-sample estimate sized to the budget (the row-at-a-time
    // sampled path is priced separately from the vectorized scan).
    uint64_t sample_rows = 0;
    double sample_fraction = 0.0;
    double sample_promise = 1.0;
    if ((scalar_agg || grouped) && n > 0) {
      ++plans;
      const double affordable =
          budget_ns * kBudgetHeadroom / cost_model_.SampleCostNs(1);
      sample_rows = static_cast<uint64_t>(
          std::min(affordable, static_cast<double>(n) / 2.0));
      sample_fraction =
          static_cast<double>(sample_rows) / static_cast<double>(n);
      const auto matching = static_cast<uint64_t>(
          std::max(1.0, static_cast<double>(sample_rows) * scan.selectivity));
      sample_promise =
          cost_model_.PredictRelativeError(matching, budget.confidence);
    }
    const bool sample_feasible = sample_rows >= kMinSampleRows;

    // Rung 4: online aggregation — pay an O(n) input build, then refine until
    // the deadline. Only scalar aggregates have an anytime estimator.
    uint64_t online_rows = 0;
    double online_promise = 1.0;
    if (scalar_agg && n > 0) {
      ++plans;
      online_rows = cost_model_.OnlineRowsWithin(budget_ns * kBudgetHeadroom, n);
      if (online_rows > 0) {
        const auto matching = static_cast<uint64_t>(std::max(
            1.0, static_cast<double>(online_rows) * scan.selectivity));
        online_promise =
            cost_model_.PredictRelativeError(matching, budget.confidence);
      }
    }
    const bool online_feasible = scalar_agg && online_rows > 0;

    // ---- Choose ------------------------------------------------------------
    PlannerChoice choice = PlannerChoice::kExact;
    double promised = 0.0;
    if (!exact_fits && scalar_agg) {
      const bool sample_meets_target =
          sample_feasible && sample_promise <= budget.target_error;
      if (callback != nullptr && online_feasible) {
        // Progressive refinement was requested: stream online-agg partials.
        choice = PlannerChoice::kOnline;
        promised = online_promise;
      } else if (sample_meets_target) {
        choice = PlannerChoice::kSample;
        promised = sample_promise;
      } else if (online_feasible && online_promise < sample_promise) {
        choice = PlannerChoice::kOnline;
        promised = online_promise;
      } else if (sample_feasible) {
        choice = PlannerChoice::kSample;
        promised = sample_promise;
      } else if (online_feasible) {
        choice = PlannerChoice::kOnline;
        promised = online_promise;
      } else {
        // Nothing fits (hopeless budget): answer anyway from the smallest
        // meaningful sample — an approximate answer beats a failure.
        choice = PlannerChoice::kSample;
        sample_rows = std::min<uint64_t>(std::max(n / 2, uint64_t{1}),
                                         kMinSampleRows);
        sample_fraction =
            static_cast<double>(sample_rows) / static_cast<double>(n);
        promised = cost_model_.PredictRelativeError(
            static_cast<uint64_t>(std::max(
                1.0, static_cast<double>(sample_rows) * scan.selectivity)),
            budget.confidence);
      }
    } else if (!exact_fits && grouped && sample_feasible) {
      choice = PlannerChoice::kSample;
      promised = sample_promise;
    }
    // Selections (and everything else without an approximate rung) run exact:
    // a position list has no anytime estimator, so the budget only informs
    // the deadline.

    planned.planner_choice = choice;
    planned.plans_considered = plans;
    planned.promised_error = promised;
    PlansConsideredCounter()->Add(plans);
    plan_span.Stop();

    // ---- Run the chosen plan ----------------------------------------------
    Result<QueryResult> run = Status::Internal("planner: no plan executed");
    bool rescued = false;
    switch (choice) {
      case PlannerChoice::kExact: {
        ExecContext sub = ctx;
        sub.SetMode(ExecutionMode::kAuto);
        sub.SetDeadline(deadline);
        run = executor_->Execute(query, sub);
        if (!run.ok() && run.status().code() == StatusCode::kDeadlineExceeded &&
            (scalar_agg || grouped)) {
          // The cost model was wrong and the exact plan blew its deadline:
          // degrade to a small sample rather than fail the contract. Feed
          // the blown attempt back into the exact rate (elapsed wall over
          // estimated live rows underestimates the true rate, but each
          // rescue pushes the estimate up until exact stops being chosen).
          rescued = true;
          ExactRescueCounter()->Add();
          cost_model_.ObserveExact(
              scan.live_rows,
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count(),
              scan.compressed);
          ExecContext rescue = ctx;
          rescue.SetMode(ExecutionMode::kSampled);
          rescue.options().sample_fraction =
              n == 0 ? 1.0
                     : std::min(1.0, static_cast<double>(kMinSampleRows) /
                                         static_cast<double>(n));
          rescue.options().confidence = budget.confidence;
          rescue.ClearDeadline();
          run = executor_->Execute(query, rescue);
        }
        break;
      }
      case PlannerChoice::kSample: {
        ExecContext sub = ctx;
        sub.SetMode(ExecutionMode::kSampled);
        sub.options().sample_fraction = sample_fraction;
        sub.options().confidence = budget.confidence;
        // The planner owns the deadline for approximate plans: the sampled
        // path was sized to the budget, and failing it at the line would
        // discard a usable answer.
        sub.ClearDeadline();
        run = executor_->Execute(query, sub);
        break;
      }
      case PlannerChoice::kOnline: {
        EXPLOREDB_ASSIGN_OR_RETURN(
            QueryResult progressive,
            RunProgressive(entry, query, ctx, deadline, callback, planned));
        progressive.exec_stats.plan_nanos += planner_nanos;
        progressive.exec_stats.total_nanos += planner_nanos;
        const auto wall = std::chrono::steady_clock::now() - start;
        (wall <= budget.latency ? BudgetMetCounter() : BudgetMissedCounter())
            ->Add();
        PlannerChoiceCounter(PlannerChoice::kOnline)->Add();
        cost_model_.ObserveOnline(
            n, progressive.exec_stats.rows_scanned,
            progressive.exec_stats.total_nanos - planner_nanos);
        if (progressive.scalar.has_value()) {
          cost_model_.ObserveRelativeError(
              progressive.exec_stats.achieved_error,
              progressive.scalar->sample_size, budget.confidence);
        }
        return progressive;
      }
      case PlannerChoice::kCache:
      case PlannerChoice::kNone:
        return Status::Internal("planner: unreachable choice");
    }
    if (!run.ok()) return run.status();
    QueryResult result = std::move(run).ValueOrDie();

    // Overlay planner provenance on the sub-execution's stats.
    ExecStats& stats = result.exec_stats;
    stats.planner_choice = rescued ? PlannerChoice::kSample : choice;
    stats.plans_considered = planned.plans_considered;
    stats.promised_error = planned.promised_error;
    stats.plan_nanos += planner_nanos;
    stats.total_nanos += planner_nanos;
    if (result.scalar.has_value()) {
      stats.achieved_error = RelativeError(*result.scalar);
      if (result.approximate) {
        cost_model_.ObserveRelativeError(stats.achieved_error,
                                         result.scalar->sample_size,
                                         budget.confidence);
      }
    } else if (!result.groups.empty()) {
      // Grouped answers promise their worst group.
      double worst = 0.0;
      for (const GroupValue& g : result.groups) {
        worst = std::max(worst, RelativeError(g.value));
      }
      stats.achieved_error = worst;
    }
    if (stats.planner_choice == PlannerChoice::kExact) {
      cost_model_.ObserveExact(stats.rows_scanned,
                               stats.total_nanos - planner_nanos,
                               stats.compressed_morsels > 0);
    } else if (stats.planner_choice == PlannerChoice::kSample) {
      cost_model_.ObserveSample(stats.rows_scanned,
                                stats.total_nanos - planner_nanos);
    }
    PlannerChoiceCounter(stats.planner_choice)->Add();
    const auto wall = std::chrono::steady_clock::now() - start;
    (wall <= budget.latency ? BudgetMetCounter() : BudgetMissedCounter())
        ->Add();

    // A single-shot delivery keeps the progressive contract for plans that
    // produce their answer all at once: the final update always equals the
    // returned result.
    if (callback != nullptr) {
      ProgressiveUpdate update;
      if (result.scalar.has_value()) update.estimate = *result.scalar;
      update.stats = stats;
      update.sequence = 0;
      update.final = true;
      (*callback)(update);
      DeliveriesCounter()->Add();
    }
    return result;
  }
}

Result<QueryResult> Planner::RunProgressive(
    TableEntry* entry, const Query& query, const ExecContext& ctx,
    std::chrono::steady_clock::time_point deadline,
    const ProgressiveCallback* callback, ExecStats stats) {
  const bool tracing = ctx.tracing();
  const LatencyBudget& budget = ctx.options().budget;
  TraceSpan query_span("query", tracing, &stats.total_nanos);
  stats.path = AccessPath::kOnline;
  stats.resolved_mode = ExecutionMode::kOnline;
  stats.simd_path = simd::ActivePath();

  const AggregateExpr& agg = *query.aggregate();
  const ColumnVector* measure = nullptr;
  if (!agg.column.empty()) {
    EXPLOREDB_ASSIGN_OR_RETURN(size_t idx,
                               entry->schema().FieldIndex(agg.column));
    EXPLOREDB_ASSIGN_OR_RETURN(measure, entry->GetColumn(idx));
    if (measure->type() == DataType::kString) {
      return Status::InvalidArgument("aggregate over string column '" +
                                     agg.column + "'");
    }
  } else if (agg.kind != AggKind::kCount) {
    return Status::InvalidArgument("only COUNT may omit the column");
  }
  EXPLOREDB_ASSIGN_OR_RETURN(size_t n, entry->NumRows());

  // Materialize the predicate mask + widened measure (one worker per
  // partition), then consume batches in random order, delivering the running
  // estimate whenever its CI improved on the best delivered so far — that
  // filter is what makes the delivery stream monotone by construction.
  TraceSpan select_span("select", tracing, &stats.select_nanos);
  const std::vector<Condition>& conds = query.where().conjuncts();
  std::vector<const ColumnVector*> cols;
  cols.reserve(conds.size());
  for (const Condition& c : conds) {
    EXPLOREDB_ASSIGN_OR_RETURN(const ColumnVector* col,
                               entry->GetColumn(c.column));
    cols.push_back(col);
  }
  OnlineInput input = BuildOnlineInput(
      conds, cols, measure, n, ctx.thread_pool(),
      std::max<size_t>(1, ctx.morsel_size()), &stats.morsels_dispatched,
      &stats.threads_used);
  select_span.Stop();

  TraceSpan agg_span("aggregate", tracing, &stats.aggregate_nanos);
  OnlineAggregator runner(std::move(input.values), std::move(input.mask),
                          agg.kind);
  const size_t batch = std::max<size_t>(n / 100, 64);
  Estimate best;
  bool have_best = false;
  uint64_t sequence = 0;
  while (!runner.done()) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    // Always consume at least one batch: the answer under any deadline must
    // be a real (if coarse) estimate, never the zero-sample degenerate.
    if (have_best && std::chrono::steady_clock::now() >= deadline) break;
    TraceSpan round_span("online_round", tracing);
    stats.rows_scanned += runner.ProcessNext(batch);
    Estimate current = runner.Current(budget.confidence);
    if (!have_best || current.ci_half_width < best.ci_half_width) {
      best = current;
      have_best = true;
      if (callback != nullptr) {
        ProgressiveUpdate update;
        update.estimate = best;
        update.stats = stats;  // snapshot mid-flight (phase nanos still open)
        update.sequence = sequence++;
        (*callback)(update);
        DeliveriesCounter()->Add();
      }
    }
    if (budget.target_error > 0 && have_best &&
        RelativeError(best) <= budget.target_error) {
      break;
    }
  }
  if (!have_best) best = runner.Current(budget.confidence);
  agg_span.Stop();
  query_span.Stop();

  QueryResult result;
  result.scalar = best;
  result.approximate = !runner.done();
  stats.achieved_error = RelativeError(best);
  result.exec_stats = stats;
  RecordEngineQueryMetrics(stats);

  // The final delivery repeats the returned answer bit-identically, with the
  // completed stats attached.
  if (callback != nullptr) {
    ProgressiveUpdate update;
    update.estimate = best;
    update.stats = result.exec_stats;
    update.sequence = sequence;
    update.final = true;
    (*callback)(update);
    DeliveriesCounter()->Add();
  }
  return result;
}

}  // namespace exploredb
